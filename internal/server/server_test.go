package server

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/acl"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/gdpr"
	"repro/internal/wire"
)

// openTestDB builds an embedded Redis-model DB on a simulated clock.
func openTestDB(t *testing.T) core.DB {
	t.Helper()
	sim := clock.NewSim(time.Unix(1_500_000_000, 0))
	db, err := core.OpenRedis(core.RedisConfig{
		Compliance:              core.Compliance{AccessControl: true, Strict: true},
		Clock:                   sim,
		DisableBackgroundExpiry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func startServer(t *testing.T, db core.DB, cfg Config) (*Server, string) {
	t.Helper()
	srv := New(db, cfg)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

// rawConn speaks the wire protocol directly, bypassing the remote
// client, to exercise server-side protocol enforcement.
type rawConn struct {
	nc net.Conn
	br *bufio.Reader
	t  *testing.T
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &rawConn{nc: nc, br: bufio.NewReader(nc), t: t}
}

func (c *rawConn) send(m wire.Message) {
	c.t.Helper()
	if err := wire.WriteMessage(c.nc, m); err != nil {
		c.t.Fatal(err)
	}
}

func (c *rawConn) recv() wire.Message {
	c.t.Helper()
	c.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	m, err := wire.ReadMessage(c.br)
	if err != nil {
		c.t.Fatal(err)
	}
	return m
}

func (c *rawConn) hello(role acl.Role, token string) wire.Message {
	c.t.Helper()
	c.send(&wire.Hello{Version: wire.ProtocolVersion, Role: role, Token: token})
	return c.recv()
}

func testRecord(i int) gdpr.Record {
	return gdpr.Record{
		Key:  fmt.Sprintf("srv-%04d", i),
		Data: fmt.Sprintf("%06d", i),
		Meta: gdpr.Metadata{
			Purposes: []string{"ads"},
			Expiry:   time.Unix(1_600_000_000, 0),
			User:     "neo",
			Source:   "test",
		},
	}
}

func TestHandshakeTokenAndVersion(t *testing.T) {
	db := openTestDB(t)
	_, addr := startServer(t, db, Config{Token: "hunter2"})

	if _, ok := dialRaw(t, addr).hello(acl.Controller, "wrong").(*wire.ErrorResp); !ok {
		t.Fatal("bad token accepted")
	}
	if _, ok := dialRaw(t, addr).hello(acl.Controller, "hunter2").(*wire.HelloOK); !ok {
		t.Fatal("good token rejected")
	}
	bad := dialRaw(t, addr)
	bad.send(&wire.Hello{Version: 99, Role: acl.Controller, Token: "hunter2"})
	if _, ok := bad.recv().(*wire.ErrorResp); !ok {
		t.Fatal("wrong protocol version accepted")
	}
}

// TestSessionRoleBinding pins the security property: a connection
// authenticated as one GDPR role cannot issue requests as another.
func TestSessionRoleBinding(t *testing.T) {
	db := openTestDB(t)
	_, addr := startServer(t, db, Config{})

	c := dialRaw(t, addr)
	if _, ok := c.hello(acl.Customer, "").(*wire.HelloOK); !ok {
		t.Fatal("handshake failed")
	}
	// A customer session smuggling a controller actor must be refused.
	c.send(&wire.CreateRecord{Actor: core.ControllerActor(), Rec: gdpr.Encode(testRecord(1))})
	if _, ok := c.recv().(*wire.ErrorResp); !ok {
		t.Fatal("cross-role request accepted")
	}
	// The same request on a controller session succeeds.
	cc := dialRaw(t, addr)
	if _, ok := cc.hello(acl.Controller, "").(*wire.HelloOK); !ok {
		t.Fatal("handshake failed")
	}
	cc.send(&wire.CreateRecord{Actor: core.ControllerActor(), Rec: gdpr.Encode(testRecord(1))})
	if _, ok := cc.recv().(*wire.Ack); !ok {
		t.Fatal("controller create failed")
	}
}

// TestPipelinedRequestsAnswerInOrder writes a burst of requests without
// reading and requires the responses to come back in request order.
func TestPipelinedRequestsAnswerInOrder(t *testing.T) {
	db := openTestDB(t)
	_, addr := startServer(t, db, Config{})

	c := dialRaw(t, addr)
	if _, ok := c.hello(acl.Controller, "").(*wire.HelloOK); !ok {
		t.Fatal("handshake failed")
	}
	const n = 32
	for i := 0; i < n; i++ {
		c.send(&wire.CreateRecord{Actor: core.ControllerActor(), Rec: gdpr.Encode(testRecord(i))})
	}
	for i := 0; i < n; i++ {
		if _, ok := c.recv().(*wire.Ack); !ok {
			t.Fatalf("create %d not acked", i)
		}
	}
	// Pipelined point reads must return each key's record, in order.
	for i := 0; i < n; i++ {
		c.send(&wire.ReadData{Actor: core.ControllerActor(), Sel: gdpr.ByKey(testRecord(i).Key)})
	}
	for i := 0; i < n; i++ {
		m, ok := c.recv().(*wire.Records)
		if !ok || len(m.Recs) != 1 {
			t.Fatalf("read %d: %v", i, m)
		}
		rec, err := gdpr.Decode(m.Recs[0])
		if err != nil || rec.Key != testRecord(i).Key {
			t.Fatalf("read %d returned %q (err %v): responses out of order", i, rec.Key, err)
		}
	}
}

// slowDB delays ReadData so a drain races an in-flight request.
type slowDB struct {
	core.DB
	delay time.Duration
}

func (s *slowDB) ReadData(a acl.Actor, sel gdpr.Selector) ([]gdpr.Record, error) {
	time.Sleep(s.delay)
	return s.DB.ReadData(a, sel)
}

// TestGracefulDrainAnswersInFlight pins the shutdown contract: requests
// already received are executed and answered before the connection
// closes, and Close returns.
func TestGracefulDrainAnswersInFlight(t *testing.T) {
	db := openTestDB(t)
	if err := db.CreateRecord(core.ControllerActor(), testRecord(0)); err != nil {
		t.Fatal(err)
	}
	slow := New(&slowDB{DB: db, delay: 300 * time.Millisecond}, Config{DrainTimeout: 5 * time.Second})
	slowAddr, err := slow.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()

	c := dialRaw(t, slowAddr)
	if _, ok := c.hello(acl.Controller, "").(*wire.HelloOK); !ok {
		t.Fatal("handshake failed")
	}
	c.send(&wire.ReadData{Actor: core.ControllerActor(), Sel: gdpr.ByKey(testRecord(0).Key)})

	var wg sync.WaitGroup
	wg.Add(1)
	closed := make(chan time.Duration, 1)
	go func() {
		defer wg.Done()
		time.Sleep(50 * time.Millisecond) // let the request reach the server
		start := time.Now()
		slow.Close()
		closed <- time.Since(start)
	}()
	m, ok := c.recv().(*wire.Records)
	if !ok || len(m.Recs) != 1 {
		t.Fatalf("in-flight request not answered during drain: %v", m)
	}
	wg.Wait()
	if d := <-closed; d > 4*time.Second {
		t.Fatalf("Close took %v — drain did not complete promptly", d)
	}
	// After the drain, new connections are refused.
	if _, err := net.DialTimeout("tcp", slowAddr, 500*time.Millisecond); err == nil {
		// The listener may briefly linger in TIME_WAIT accept queues; the
		// definitive check is that a handshake gets no response.
		c2 := dialRaw(t, slowAddr)
		c2.nc.SetReadDeadline(time.Now().Add(time.Second))
		if err := wire.WriteMessage(c2.nc, &wire.Hello{Version: wire.ProtocolVersion, Role: acl.Controller}); err == nil {
			if _, err := wire.ReadMessage(bufio.NewReader(c2.nc)); err == nil {
				t.Fatal("server still answering after Close")
			}
		}
	}
}

// TestMalformedFrameClosesConnection: a frame error ends the session
// without taking the server down.
func TestMalformedFrameClosesConnection(t *testing.T) {
	db := openTestDB(t)
	_, addr := startServer(t, db, Config{})

	c := dialRaw(t, addr)
	if _, ok := c.hello(acl.Controller, "").(*wire.HelloOK); !ok {
		t.Fatal("handshake failed")
	}
	// An oversized frame header: the server must drop the connection.
	if _, err := c.nc.Write([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	c.nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := wire.ReadMessage(c.br); err == nil {
		t.Fatal("server answered a malformed frame")
	}
	// The server itself survives: a fresh connection works.
	c2 := dialRaw(t, addr)
	if _, ok := c2.hello(acl.Controller, "").(*wire.HelloOK); !ok {
		t.Fatal("server died after a malformed frame")
	}
}

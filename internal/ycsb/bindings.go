package ycsb

import (
	"fmt"
	"time"

	"repro/internal/kvstore"
	"repro/internal/relstore"
	"repro/internal/transit"
)

// KVStoreBinding drives the Redis-model engine.
type KVStoreBinding struct {
	Store *kvstore.Store
	// TTL, when non-zero-valued via SetTTL, arms an expiry on every
	// insert/update so the timely-deletion feature has keys to manage
	// (YCSB itself has no TTL notion).
	ttl func() (expireAt int64, ok bool)
}

// NewKVStoreBinding wraps a kvstore.Store.
func NewKVStoreBinding(s *kvstore.Store) *KVStoreBinding {
	return &KVStoreBinding{Store: s}
}

// SetTTLFunc installs a function returning the unixnano expiry for new
// writes; nil disables TTLs.
func (b *KVStoreBinding) SetTTLFunc(fn func() (int64, bool)) { b.ttl = fn }

func (b *KVStoreBinding) write(key, value string) error {
	if b.ttl != nil {
		if ns, ok := b.ttl(); ok {
			return b.Store.SetWithExpiry(key, value, time.Unix(0, ns))
		}
	}
	return b.Store.Set(key, value)
}

// Insert implements KV.
func (b *KVStoreBinding) Insert(key, value string) error { return b.write(key, value) }

// Update implements KV.
func (b *KVStoreBinding) Update(key, value string) error { return b.write(key, value) }

// Read implements KV.
func (b *KVStoreBinding) Read(key string) (string, error) {
	v, ok := b.Store.Get(key)
	if !ok {
		return "", ErrNotFound
	}
	return v, nil
}

// Scan implements KV using the store's cursor scan.
func (b *KVStoreBinding) Scan(startIdx int64, count int) (int, error) {
	size := b.Store.DBSize()
	if size == 0 {
		return 0, nil
	}
	cursor := int(startIdx % int64(size))
	keys, _ := b.Store.Scan(cursor, count)
	// Touch each scanned record like a real scan result materialization.
	n := 0
	for _, k := range keys {
		if _, ok := b.Store.Get(k); ok {
			n++
		}
	}
	return n, nil
}

// RelStoreBinding drives the PostgreSQL-model engine through a
// key/value/ttl table.
type RelStoreBinding struct {
	DB    *relstore.DB
	Table string
	// ttl, when set, supplies the expiry written with every row so the
	// timely-deletion daemon has rows to manage.
	ttl func() (expireAtNanos int64, ok bool)
}

// YCSBSchema is the table the relational binding uses. The ttl column is
// zero (never expires) unless a TTL function is installed.
func YCSBSchema(name string) relstore.Schema {
	return relstore.Schema{
		Name: name,
		Columns: []relstore.Column{
			{Name: "key", Type: relstore.TypeText},
			{Name: "field0", Type: relstore.TypeText},
			{Name: "ttl", Type: relstore.TypeTime},
		},
		PrimaryKey: "key",
	}
}

// NewRelStoreBinding wraps a relstore.DB, creating the YCSB table.
func NewRelStoreBinding(db *relstore.DB, table string) (*RelStoreBinding, error) {
	if err := db.CreateTable(YCSBSchema(table)); err != nil {
		return nil, err
	}
	if err := db.Recover(); err != nil {
		return nil, err
	}
	return &RelStoreBinding{DB: db, Table: table}, nil
}

// SetTTLFunc installs a function returning the unixnano expiry for new
// writes; nil disables TTLs.
func (b *RelStoreBinding) SetTTLFunc(fn func() (int64, bool)) { b.ttl = fn }

func (b *RelStoreBinding) rowTTL() time.Time {
	if b.ttl != nil {
		if ns, ok := b.ttl(); ok {
			return time.Unix(0, ns)
		}
	}
	return time.Time{}
}

// Insert implements KV with upsert semantics (like the engine's SET
// counterpart, and like YCSB bindings in general: back-to-back workloads
// re-insert keys a previous workload already created).
func (b *RelStoreBinding) Insert(key, value string) error {
	if err := b.DB.Insert(b.Table, relstore.Row{key, value, b.rowTTL()}); err != nil {
		return b.Update(key, value)
	}
	return nil
}

// Read implements KV.
func (b *RelStoreBinding) Read(key string) (string, error) {
	row, ok, err := b.DB.Get(b.Table, key)
	if err != nil {
		return "", err
	}
	if !ok {
		return "", ErrNotFound
	}
	return row[1].(string), nil
}

// Update implements KV.
func (b *RelStoreBinding) Update(key, value string) error {
	ttl := b.rowTTL()
	ok, err := b.DB.UpdateFunc(b.Table, key, func(r relstore.Row) (relstore.Row, error) {
		r[1] = value
		if !ttl.IsZero() {
			r[2] = ttl
		}
		return r, nil
	})
	if err != nil {
		return err
	}
	if !ok {
		return ErrNotFound
	}
	return nil
}

// Scan implements KV with a PK range scan.
func (b *RelStoreBinding) Scan(startIdx int64, count int) (int, error) {
	rows, err := b.DB.ScanPK(b.Table, Key(startIdx), count)
	if err != nil {
		return 0, err
	}
	return len(rows), nil
}

// WireKV models the client/server boundary every real deployment of
// these engines has: each operation is marshaled into a request frame and
// its result into a response frame (the RESP / wire-protocol cost that is
// part of the engines' baselines). With a transit pipe installed, both
// frames additionally pass through the TLS-like record layer — the
// paper's Stunnel / verify-CA SSL encryption feature.
type WireKV struct {
	Inner KV
	Pipe  *transit.Pipe // nil = plaintext framing only
}

// NewWireKV wraps inner with the wire layer; pipe may be nil.
func NewWireKV(inner KV, pipe *transit.Pipe) *WireKV {
	return &WireKV{Inner: inner, Pipe: pipe}
}

// NewEncryptedKV wraps inner with an encrypting wire layer.
func NewEncryptedKV(inner KV, pipe *transit.Pipe) *WireKV {
	return &WireKV{Inner: inner, Pipe: pipe}
}

func (e *WireKV) roundTrip(req string, fn func() (string, error)) (string, error) {
	if e.Pipe == nil {
		// Plaintext framing: the request and response still cross the
		// client/server boundary as byte frames.
		wire := []byte(req)
		_ = wire
		out, err := fn()
		if err != nil {
			return "", err
		}
		resp := []byte(out)
		return string(resp), nil
	}
	var out string
	var opErr error
	_, err := e.Pipe.RoundTrip([]byte(req), func([]byte) []byte {
		out, opErr = fn()
		return []byte(out)
	})
	if opErr != nil {
		return "", opErr
	}
	if err != nil {
		return "", err
	}
	return out, nil
}

// Insert implements KV.
func (e *WireKV) Insert(key, value string) error {
	_, err := e.roundTrip("INSERT "+key+" "+value, func() (string, error) {
		return "OK", e.Inner.Insert(key, value)
	})
	return err
}

// Update implements KV.
func (e *WireKV) Update(key, value string) error {
	_, err := e.roundTrip("UPDATE "+key+" "+value, func() (string, error) {
		return "OK", e.Inner.Update(key, value)
	})
	return err
}

// Read implements KV.
func (e *WireKV) Read(key string) (string, error) {
	return e.roundTrip("READ "+key, func() (string, error) {
		return e.Inner.Read(key)
	})
}

// Scan implements KV.
func (e *WireKV) Scan(startIdx int64, count int) (int, error) {
	var n int
	_, err := e.roundTrip(fmt.Sprintf("SCAN %d %d", startIdx, count), func() (string, error) {
		var err error
		n, err = e.Inner.Scan(startIdx, count)
		return fmt.Sprintf("%d", n), err
	})
	return n, err
}

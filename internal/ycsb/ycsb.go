// Package ycsb reimplements the Yahoo! Cloud Serving Benchmark core
// workloads (Cooper et al., SoCC '10) used throughout the paper as the
// "traditional workload" baseline: the load phase plus workloads A–F of
// Table 2 (§6.1), with zipfian / latest request distributions and a
// multi-threaded executor.
package ycsb

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist"
	"repro/internal/stats"
)

// ErrNotFound is returned by KV.Read for missing keys.
var ErrNotFound = errors.New("ycsb: key not found")

// KV is the storage binding the executor drives; implementations exist
// for both engines (see bindings.go).
type KV interface {
	// Insert stores a new record.
	Insert(key, value string) error
	// Read fetches a record.
	Read(key string) (string, error)
	// Update overwrites an existing record.
	Update(key, value string) error
	// Scan reads up to count records starting at a position derived from
	// startIdx, returning how many it saw.
	Scan(startIdx int64, count int) (int, error)
}

// Op is a YCSB operation kind.
type Op int

// Operations.
const (
	OpRead Op = iota
	OpUpdate
	OpInsert
	OpScan
	OpReadModifyWrite
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "READ"
	case OpUpdate:
		return "UPDATE"
	case OpInsert:
		return "INSERT"
	case OpScan:
		return "SCAN"
	case OpReadModifyWrite:
		return "RMW"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// RequestDist selects how record keys are chosen.
type RequestDist int

// Request distributions.
const (
	DistZipfian RequestDist = iota
	DistUniform
	DistLatest
)

// Workload is one YCSB workload definition.
type Workload struct {
	Name string
	// Mix maps operations to weights.
	Ops     []Op
	Weights []float64
	Dist    RequestDist
	// MaxScanLength bounds scan sizes (workload E).
	MaxScanLength int
}

// Workloads returns the paper's Table 2 set, keyed by letter.
func Workloads() map[string]Workload {
	return map[string]Workload{
		"A": {Name: "A (session store)", Ops: []Op{OpRead, OpUpdate}, Weights: []float64{50, 50}, Dist: DistZipfian},
		"B": {Name: "B (photo tagging)", Ops: []Op{OpRead, OpUpdate}, Weights: []float64{95, 5}, Dist: DistZipfian},
		"C": {Name: "C (user profile cache)", Ops: []Op{OpRead}, Weights: []float64{100}, Dist: DistZipfian},
		"D": {Name: "D (user status update)", Ops: []Op{OpRead, OpInsert}, Weights: []float64{95, 5}, Dist: DistLatest},
		"E": {Name: "E (threaded conversation)", Ops: []Op{OpScan, OpInsert}, Weights: []float64{95, 5}, Dist: DistZipfian, MaxScanLength: 100},
		"F": {Name: "F (user activity record)", Ops: []Op{OpReadModifyWrite}, Weights: []float64{100}, Dist: DistZipfian},
	}
}

// WorkloadLetters lists the workloads in presentation order.
func WorkloadLetters() []string { return []string{"A", "B", "C", "D", "E", "F"} }

// Config parameterizes a run.
type Config struct {
	// Records is the number of records the load phase inserts.
	Records int
	// Operations is the number of operations the run phase executes.
	Operations int
	// Threads is the number of worker goroutines (paper: 16 for YCSB).
	Threads int
	// ValueSize is the record payload size in bytes.
	ValueSize int
	// MaxTime, when positive, stops the run phase at the deadline even if
	// Operations have not been exhausted — fixed-duration measurement
	// windows give comparable samples across configurations with very
	// different speeds.
	MaxTime time.Duration
	// Seed drives all randomness.
	Seed int64
}

// WithDefaults fills zero fields with benchmark defaults.
func (c Config) WithDefaults() Config {
	if c.Records == 0 {
		c.Records = 10000
	}
	if c.Operations == 0 {
		c.Operations = 10000
	}
	if c.Threads == 0 {
		c.Threads = 16
	}
	if c.ValueSize == 0 {
		c.ValueSize = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Key renders the i-th record key ("user" prefix, like YCSB).
func Key(i int64) string { return fmt.Sprintf("user%012d", i) }

// value builds a deterministic payload of n bytes.
func value(r *rand.Rand, n int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
	var b strings.Builder
	b.Grow(n)
	for i := 0; i < n; i++ {
		b.WriteByte(alphabet[r.Intn(len(alphabet))])
	}
	return b.String()
}

// Load inserts cfg.Records records using cfg.Threads workers and returns
// run statistics.
func Load(kv KV, cfg Config) (*stats.Run, error) {
	cfg = cfg.WithDefaults()
	run := stats.NewRun()
	run.Start(time.Now())
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			op := run.Op("INSERT")
			for {
				i := next.Add(1) - 1
				if i >= int64(cfg.Records) {
					return
				}
				t0 := time.Now()
				err := kv.Insert(Key(i), value(r, cfg.ValueSize))
				if err != nil {
					op.RecordErr(time.Since(t0))
					firstErr.CompareAndSwap(nil, err)
					return
				}
				op.RecordOK(time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	run.Finish(time.Now())
	if err, _ := firstErr.Load().(error); err != nil {
		return run, err
	}
	return run, nil
}

// Run executes the named workload (letter A–F) against kv, assuming the
// load phase already inserted cfg.Records records.
func Run(kv KV, letter string, cfg Config) (*stats.Run, error) {
	w, ok := Workloads()[letter]
	if !ok {
		return nil, fmt.Errorf("ycsb: unknown workload %q", letter)
	}
	cfg = cfg.WithDefaults()
	run := stats.NewRun()
	// insertSeq hands out fresh record indexes for OpInsert across workers.
	var insertSeq atomic.Int64
	insertSeq.Store(int64(cfg.Records))
	var done atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup

	var deadline time.Time
	if cfg.MaxTime > 0 {
		deadline = time.Now().Add(cfg.MaxTime)
	}
	run.Start(time.Now())
	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed + 100 + int64(t)))
			chooser := dist.NewWeighted(r, w.Ops, w.Weights)
			var keys dist.IntRange
			switch w.Dist {
			case DistUniform:
				keys = dist.NewUniform(r, int64(cfg.Records))
			case DistLatest:
				keys = dist.NewLatest(r, int64(cfg.Records))
			default:
				keys = dist.NewScrambledZipfian(r, int64(cfg.Records))
			}
			scanLen := dist.NewUniform(r, int64(maxInt(w.MaxScanLength, 1)))
			for done.Add(1) <= int64(cfg.Operations) {
				if !deadline.IsZero() && time.Now().After(deadline) {
					return
				}
				op := chooser.Next()
				rec := run.Op(op.String())
				t0 := time.Now()
				var err error
				switch op {
				case OpRead:
					_, err = kv.Read(Key(keys.Next()))
				case OpUpdate:
					err = kv.Update(Key(keys.Next()), value(r, cfg.ValueSize))
				case OpInsert:
					idx := insertSeq.Add(1) - 1
					err = kv.Insert(Key(idx), value(r, cfg.ValueSize))
					keys.SetItemCount(idx + 1)
				case OpScan:
					_, err = kv.Scan(keys.Next(), int(scanLen.Next())+1)
				case OpReadModifyWrite:
					k := Key(keys.Next())
					if _, err = kv.Read(k); err == nil || errors.Is(err, ErrNotFound) {
						err = kv.Update(k, value(r, cfg.ValueSize))
					}
				}
				// Missing keys are a workload artifact (e.g. reads racing
				// inserts in D), not an engine failure.
				if err != nil && !errors.Is(err, ErrNotFound) {
					rec.RecordErr(time.Since(t0))
					firstErr.CompareAndSwap(nil, err)
					return
				}
				rec.RecordOK(time.Since(t0))
			}
		}(t)
	}
	wg.Wait()
	run.Finish(time.Now())
	if err, _ := firstErr.Load().(error); err != nil {
		return run, err
	}
	return run, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package ycsb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/kvstore"
	"repro/internal/relstore"
	"repro/internal/securefs"
	"repro/internal/transit"
)

// memKV is a trivial reference binding for executor tests.
type memKV struct {
	mu sync.Mutex
	m  map[string]string
}

func newMemKV() *memKV { return &memKV{m: make(map[string]string)} }

func (k *memKV) Insert(key, value string) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.m[key] = value
	return nil
}

func (k *memKV) Update(key, value string) error { return k.Insert(key, value) }

func (k *memKV) Read(key string) (string, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	v, ok := k.m[key]
	if !ok {
		return "", ErrNotFound
	}
	return v, nil
}

func (k *memKV) Scan(startIdx int64, count int) (int, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if count > len(k.m) {
		count = len(k.m)
	}
	return count, nil
}

func TestWorkloadDefinitionsMatchTable2(t *testing.T) {
	ws := Workloads()
	if len(ws) != 6 {
		t.Fatalf("workloads = %d", len(ws))
	}
	check := func(letter string, ops []Op, weights []float64, d RequestDist) {
		w := ws[letter]
		if len(w.Ops) != len(ops) {
			t.Fatalf("%s ops = %v", letter, w.Ops)
		}
		for i := range ops {
			if w.Ops[i] != ops[i] || w.Weights[i] != weights[i] {
				t.Fatalf("%s mix = %v %v", letter, w.Ops, w.Weights)
			}
		}
		if w.Dist != d {
			t.Fatalf("%s dist = %v", letter, w.Dist)
		}
	}
	check("A", []Op{OpRead, OpUpdate}, []float64{50, 50}, DistZipfian)
	check("B", []Op{OpRead, OpUpdate}, []float64{95, 5}, DistZipfian)
	check("C", []Op{OpRead}, []float64{100}, DistZipfian)
	check("D", []Op{OpRead, OpInsert}, []float64{95, 5}, DistLatest)
	check("E", []Op{OpScan, OpInsert}, []float64{95, 5}, DistZipfian)
	check("F", []Op{OpReadModifyWrite}, []float64{100}, DistZipfian)
	if ws["E"].MaxScanLength != 100 {
		t.Fatalf("E scan length = %d", ws["E"].MaxScanLength)
	}
	if got := WorkloadLetters(); len(got) != 6 || got[0] != "A" || got[5] != "F" {
		t.Fatalf("letters = %v", got)
	}
}

func TestLoadInsertsExactCount(t *testing.T) {
	kv := newMemKV()
	run, err := Load(kv, Config{Records: 500, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(kv.m) != 500 {
		t.Fatalf("records = %d", len(kv.m))
	}
	if run.Op("INSERT").OK() != 500 {
		t.Fatalf("insert count = %d", run.Op("INSERT").OK())
	}
	if run.TotalErrors() != 0 {
		t.Fatalf("errors = %d", run.TotalErrors())
	}
}

func TestRunAllWorkloadsOnMemKV(t *testing.T) {
	for _, letter := range WorkloadLetters() {
		t.Run(letter, func(t *testing.T) {
			kv := newMemKV()
			cfg := Config{Records: 200, Operations: 1000, Threads: 4, Seed: 7}
			if _, err := Load(kv, cfg); err != nil {
				t.Fatal(err)
			}
			run, err := Run(kv, letter, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := run.TotalOps(); got < 1000 {
				t.Fatalf("ops = %d, want >= 1000", got)
			}
			if run.TotalErrors() != 0 {
				t.Fatalf("errors = %d\n%s", run.TotalErrors(), run.Summary())
			}
			if run.Throughput() <= 0 {
				t.Fatal("throughput not positive")
			}
		})
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if _, err := Run(newMemKV(), "Z", Config{}); err == nil {
		t.Fatal("unknown workload should fail")
	}
}

func TestRunPropagatesEngineErrors(t *testing.T) {
	kv := &failingKV{}
	if _, err := Run(kv, "A", Config{Records: 10, Operations: 100, Threads: 2}); err == nil {
		t.Fatal("engine error should propagate")
	}
}

type failingKV struct{}

var errBoom = errors.New("boom")

func (f *failingKV) Insert(string, string) error  { return errBoom }
func (f *failingKV) Update(string, string) error  { return errBoom }
func (f *failingKV) Read(string) (string, error)  { return "", errBoom }
func (f *failingKV) Scan(int64, int) (int, error) { return 0, errBoom }

func TestKVStoreBindingAllWorkloads(t *testing.T) {
	s, err := kvstore.Open(kvstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	b := NewKVStoreBinding(s)
	cfg := Config{Records: 300, Operations: 600, Threads: 4, Seed: 3}
	if _, err := Load(b, cfg); err != nil {
		t.Fatal(err)
	}
	for _, letter := range WorkloadLetters() {
		run, err := Run(b, letter, cfg)
		if err != nil {
			t.Fatalf("%s: %v", letter, err)
		}
		if run.TotalErrors() != 0 {
			t.Fatalf("%s errors: %s", letter, run.Summary())
		}
	}
}

func TestRelStoreBindingAllWorkloads(t *testing.T) {
	db, err := relstore.Open(relstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	b, err := NewRelStoreBinding(db, "usertable")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Records: 300, Operations: 600, Threads: 4, Seed: 3}
	if _, err := Load(b, cfg); err != nil {
		t.Fatal(err)
	}
	for _, letter := range WorkloadLetters() {
		run, err := Run(b, letter, cfg)
		if err != nil {
			t.Fatalf("%s: %v", letter, err)
		}
		if run.TotalErrors() != 0 {
			t.Fatalf("%s errors: %s", letter, run.Summary())
		}
	}
}

func TestRelStoreBindingReadUpdateMissing(t *testing.T) {
	db, _ := relstore.Open(relstore.Config{})
	defer db.Close()
	b, err := NewRelStoreBinding(db, "usertable")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read missing = %v", err)
	}
	if err := b.Update("missing", "v"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update missing = %v", err)
	}
}

func TestKVStoreBindingTTLFunc(t *testing.T) {
	s, _ := kvstore.Open(kvstore.Config{})
	defer s.Close()
	b := NewKVStoreBinding(s)
	var calls int
	b.SetTTLFunc(func() (int64, bool) {
		calls++
		return 4102444800000000000, true // year 2100
	})
	if err := b.Insert("k", "v"); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("ttl func calls = %d", calls)
	}
	if s.ExpiresSize() != 1 {
		t.Fatalf("expires = %d", s.ExpiresSize())
	}
}

func TestEncryptedKVRoundTrips(t *testing.T) {
	pipe, err := transit.NewPipe(securefs.Key("ycsb"))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEncryptedKV(newMemKV(), pipe)
	if err := e.Insert("k", "v"); err != nil {
		t.Fatal(err)
	}
	v, err := e.Read("k")
	if err != nil || v != "v" {
		t.Fatalf("read = %q %v", v, err)
	}
	if err := e.Update("k", "v2"); err != nil {
		t.Fatal(err)
	}
	if v, _ := e.Read("k"); v != "v2" {
		t.Fatalf("after update = %q", v)
	}
	if _, err := e.Read("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing = %v", err)
	}
	n, err := e.Scan(0, 1)
	if err != nil || n != 1 {
		t.Fatalf("scan = %d %v", n, err)
	}
}

func TestEncryptedKVUnderConcurrency(t *testing.T) {
	pipe, err := transit.NewPipe(securefs.Key("ycsb2"))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEncryptedKV(newMemKV(), pipe)
	cfg := Config{Records: 100, Operations: 500, Threads: 8, Seed: 5}
	if _, err := Load(e, cfg); err != nil {
		t.Fatal(err)
	}
	run, err := Run(e, "A", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if run.TotalErrors() != 0 {
		t.Fatalf("errors: %s", run.Summary())
	}
}

func TestKeyFormatting(t *testing.T) {
	if Key(0) != "user000000000000" {
		t.Fatalf("Key(0) = %q", Key(0))
	}
	if Key(42) >= Key(43) {
		t.Fatal("keys not ordered")
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		OpRead: "READ", OpUpdate: "UPDATE", OpInsert: "INSERT",
		OpScan: "SCAN", OpReadModifyWrite: "RMW", Op(42): "Op(42)",
	} {
		if op.String() != want {
			t.Fatalf("%d.String = %q", int(op), op.String())
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Records != 10000 || c.Operations != 10000 || c.Threads != 16 || c.ValueSize != 100 || c.Seed != 1 {
		t.Fatalf("defaults = %+v", c)
	}
	c2 := Config{Records: 5, Operations: 6, Threads: 7, ValueSize: 8, Seed: 9}.WithDefaults()
	if c2.Records != 5 || c2.Operations != 6 || c2.Threads != 7 || c2.ValueSize != 8 || c2.Seed != 9 {
		t.Fatalf("overrides lost: %+v", c2)
	}
}

func TestWorkloadDRunGrowsKeySpace(t *testing.T) {
	kv := newMemKV()
	cfg := Config{Records: 100, Operations: 2000, Threads: 2, Seed: 11}
	if _, err := Load(kv, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(kv, "D", cfg); err != nil {
		t.Fatal(err)
	}
	if len(kv.m) <= 100 {
		t.Fatalf("workload D inserted nothing: %d records", len(kv.m))
	}
	// Inserted keys continue the sequence.
	if _, ok := kv.m[Key(100)]; !ok {
		t.Fatal("first post-load key missing")
	}
}

func BenchmarkWorkloadAOnKVStore(b *testing.B) {
	s, _ := kvstore.Open(kvstore.Config{})
	defer s.Close()
	bind := NewKVStoreBinding(s)
	cfg := Config{Records: 10000, Operations: 10000, Threads: 8, Seed: 1}
	if _, err := Load(bind, cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Operations = 5000
		if _, err := Run(bind, "A", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = fmt.Sprintf // keep fmt import if unused in some build configs

func TestRunMaxTimeStopsEarly(t *testing.T) {
	kv := newMemKV()
	cfg := Config{Records: 100, Operations: 100_000_000, MaxTime: 50 * time.Millisecond, Threads: 4, Seed: 9}
	if _, err := Load(kv, Config{Records: 100, Threads: 2}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	run, err := Run(kv, "C", cfg)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("run did not stop at deadline: %v", elapsed)
	}
	if run.TotalOps() == 0 {
		t.Fatal("no ops executed before deadline")
	}
	if run.TotalOps() >= 100_000_000 {
		t.Fatal("op budget exhausted, deadline never applied")
	}
}

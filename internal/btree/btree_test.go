package btree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := NewDefault[int]()
	if tr.Len() != 0 {
		t.Fatalf("len = %d", tr.Len())
	}
	if _, ok := tr.Get("x"); ok {
		t.Fatal("found key in empty tree")
	}
	if tr.Delete("x") {
		t.Fatal("deleted from empty tree")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("Max on empty")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSetGetOverwrite(t *testing.T) {
	tr := New[string](2)
	if !tr.Set("a", "1") {
		t.Fatal("first set should insert")
	}
	if tr.Set("a", "2") {
		t.Fatal("overwrite should not count as insert")
	}
	if v, ok := tr.Get("a"); !ok || v != "2" {
		t.Fatalf("Get = %q %v", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestInsertManyAscendSorted(t *testing.T) {
	tr := New[int](3)
	const n = 2000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		tr.Set(fmt.Sprintf("key-%06d", i), i)
	}
	if tr.Len() != n {
		t.Fatalf("len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var keys []string
	tr.Ascend(func(k string, v int) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != n {
		t.Fatalf("ascend visited %d", len(keys))
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatal("ascend not sorted")
	}
	mink, _, _ := tr.Min()
	maxk, _, _ := tr.Max()
	if mink != keys[0] || maxk != keys[n-1] {
		t.Fatalf("min/max = %q/%q", mink, maxk)
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New[int](2)
	for i := 0; i < 100; i++ {
		tr.Set(fmt.Sprintf("%03d", i), i)
	}
	count := 0
	tr.Ascend(func(string, int) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("visited %d", count)
	}
}

func TestAscendRange(t *testing.T) {
	tr := New[int](2)
	for i := 0; i < 100; i++ {
		tr.Set(fmt.Sprintf("%03d", i), i)
	}
	var got []string
	tr.AscendRange("010", "020", func(k string, _ int) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 10 || got[0] != "010" || got[9] != "019" {
		t.Fatalf("range = %v", got)
	}
	// Empty range.
	got = nil
	tr.AscendRange("500", "600", func(k string, _ int) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 0 {
		t.Fatalf("out-of-domain range = %v", got)
	}
	// lo == hi yields nothing.
	got = nil
	tr.AscendRange("010", "010", func(k string, _ int) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 0 {
		t.Fatalf("empty range = %v", got)
	}
}

func TestAscendRangeEarlyStop(t *testing.T) {
	tr := New[int](2)
	for i := 0; i < 100; i++ {
		tr.Set(fmt.Sprintf("%03d", i), i)
	}
	n := 0
	tr.AscendRange("000", "099", func(string, int) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("visited %d", n)
	}
}

func TestAscendPrefix(t *testing.T) {
	tr := New[int](2)
	tr.Set("ads\x00k1", 1)
	tr.Set("ads\x00k2", 2)
	tr.Set("adsx", 3)
	tr.Set("2fa\x00k1", 4)
	var got []string
	tr.AscendPrefix("ads\x00", func(k string, _ int) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 2 || got[0] != "ads\x00k1" || got[1] != "ads\x00k2" {
		t.Fatalf("prefix scan = %v", got)
	}
	// Empty prefix = full scan.
	n := 0
	tr.AscendPrefix("", func(string, int) bool { n++; return true })
	if n != 4 {
		t.Fatalf("empty prefix visited %d", n)
	}
	// Prefix of all 0xff bytes exercises the unbounded fallback.
	tr.Set("\xff\xffz", 9)
	n = 0
	tr.AscendPrefix("\xff\xff", func(string, int) bool { n++; return true })
	if n != 1 {
		t.Fatalf("ff prefix visited %d", n)
	}
}

func TestDeleteEverythingInRandomOrder(t *testing.T) {
	for _, degree := range []int{2, 3, 8, 32} {
		t.Run(fmt.Sprintf("degree-%d", degree), func(t *testing.T) {
			tr := New[int](degree)
			const n = 1000
			r := rand.New(rand.NewSource(7))
			keys := make([]string, n)
			for i := range keys {
				keys[i] = fmt.Sprintf("k%05d", i)
			}
			for _, i := range r.Perm(n) {
				tr.Set(keys[i], i)
			}
			for _, i := range r.Perm(n) {
				if !tr.Delete(keys[i]) {
					t.Fatalf("delete %q failed", keys[i])
				}
				if tr.Delete(keys[i]) {
					t.Fatalf("double delete %q succeeded", keys[i])
				}
			}
			if tr.Len() != 0 {
				t.Fatalf("len = %d after deleting all", tr.Len())
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMixedOpsAgainstModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		degree := 2 + r.Intn(6)
		tr := New[int](degree)
		model := map[string]int{}
		for i := 0; i < 500; i++ {
			k := fmt.Sprintf("k%03d", r.Intn(120))
			switch r.Intn(3) {
			case 0, 1:
				v := r.Intn(1000)
				tr.Set(k, v)
				model[k] = v
			case 2:
				got := tr.Delete(k)
				_, want := model[k]
				if got != want {
					t.Logf("seed %d: delete %q = %v, model %v", seed, k, got, want)
					return false
				}
				delete(model, k)
			}
		}
		if tr.Len() != len(model) {
			t.Logf("seed %d: len %d != model %d", seed, tr.Len(), len(model))
			return false
		}
		for k, v := range model {
			got, ok := tr.Get(k)
			if !ok || got != v {
				t.Logf("seed %d: get %q = %d,%v want %d", seed, k, got, ok, v)
				return false
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Ordered iteration equals sorted model keys.
		want := make([]string, 0, len(model))
		for k := range model {
			want = append(want, k)
		}
		sort.Strings(want)
		var got []string
		tr.Ascend(func(k string, _ int) bool { got = append(got, k); return true })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialInsertDescendingDelete(t *testing.T) {
	tr := New[int](2)
	const n = 500
	for i := 0; i < n; i++ {
		tr.Set(fmt.Sprintf("%05d", i), i)
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after insert %d: %v", i, err)
		}
	}
	for i := n - 1; i >= 0; i-- {
		if !tr.Delete(fmt.Sprintf("%05d", i)) {
			t.Fatalf("delete %d failed", i)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after delete %d: %v", i, err)
		}
	}
}

func TestDegreeBelowTwoClamped(t *testing.T) {
	tr := New[int](0)
	for i := 0; i < 100; i++ {
		tr.Set(fmt.Sprintf("%d", i), i)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSet(b *testing.B) {
	tr := NewDefault[int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Set(fmt.Sprintf("key-%09d", i%1_000_000), i)
	}
}

func BenchmarkGet(b *testing.B) {
	tr := NewDefault[int]()
	for i := 0; i < 100_000; i++ {
		tr.Set(fmt.Sprintf("key-%09d", i), i)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Get(fmt.Sprintf("key-%09d", i%100_000))
	}
}

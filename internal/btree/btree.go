// Package btree implements an in-memory B-tree with string keys, ordered
// iteration and range scans. It is the index structure behind the
// relational engine's primary and secondary indexes (the paper's
// "metadata indexing via built-in secondary indices", §5.2).
//
// The tree is a classic B-tree of configurable degree: every node except
// the root holds between degree-1 and 2*degree-1 keys; splits happen on
// the way down during insert, and deletes rebalance by borrowing or
// merging. The tree is not safe for concurrent use; the owning table
// serializes access.
//
// Clone produces an O(1) copy-on-write snapshot: both trees share every
// node until one of them writes, at which point the writer path-copies
// the nodes it touches (the structure-sharing scheme of google/btree and
// of LMDB's pages). A clone frozen as a read-only snapshot can therefore
// be read without any lock while the original keeps mutating.
package btree

import (
	"fmt"
	"sort"
)

// DefaultDegree is a reasonable fan-out for in-memory use.
const DefaultDegree = 32

// owner is an ownership token: a node may be mutated in place only by the
// tree whose token it carries; every other tree sharing it must copy
// first (copy-on-write).
type owner struct{ _ byte }

// Tree is a B-tree mapping string keys to values of type V.
type Tree[V any] struct {
	root   *node[V]
	degree int
	size   int
	cow    *owner
}

type item[V any] struct {
	key   string
	value V
}

type node[V any] struct {
	items    []item[V]
	children []*node[V] // nil for leaves
	cow      *owner
}

func (n *node[V]) leaf() bool { return len(n.children) == 0 }

// New returns an empty tree with the given degree (minimum 2).
func New[V any](degree int) *Tree[V] {
	if degree < 2 {
		degree = 2
	}
	return &Tree[V]{degree: degree, cow: new(owner)}
}

// Clone returns a copy of the tree in O(1). The clone and the original
// share all current nodes; each side lazily copies the nodes it mutates,
// so writes on one are never visible through the other. Cloning is not
// safe concurrently with writes to the same tree (callers hold the
// writer's lock), but a clone handed out as a snapshot may be read freely
// while the original continues to change.
func (t *Tree[V]) Clone() *Tree[V] {
	// Both trees get fresh ownership tokens, so every pre-existing node
	// (carrying the old token) reads as shared to both sides.
	out := *t
	t.cow = new(owner)
	out.cow = new(owner)
	return &out
}

// mutable returns a node the tree may mutate in place: n itself when the
// tree owns it, otherwise a copy carrying the tree's token.
func (t *Tree[V]) mutable(n *node[V]) *node[V] {
	if n.cow == t.cow {
		return n
	}
	c := &node[V]{
		cow:   t.cow,
		items: append(make([]item[V], 0, cap(n.items)), n.items...),
	}
	if len(n.children) > 0 {
		c.children = append(make([]*node[V], 0, cap(n.children)), n.children...)
	}
	return c
}

// mutableChild makes child i of (already-mutable) n mutable and re-links it.
func (t *Tree[V]) mutableChild(n *node[V], i int) *node[V] {
	c := t.mutable(n.children[i])
	n.children[i] = c
	return c
}

// NewDefault returns an empty tree with DefaultDegree.
func NewDefault[V any]() *Tree[V] { return New[V](DefaultDegree) }

// Len returns the number of keys stored.
func (t *Tree[V]) Len() int { return t.size }

func (t *Tree[V]) maxItems() int { return 2*t.degree - 1 }
func (t *Tree[V]) minItems() int { return t.degree - 1 }

// find returns the position of key in n.items and whether it was found.
func (n *node[V]) find(key string) (int, bool) {
	i := sort.Search(len(n.items), func(i int) bool { return n.items[i].key >= key })
	if i < len(n.items) && n.items[i].key == key {
		return i, true
	}
	return i, false
}

// Get returns the value stored under key.
func (t *Tree[V]) Get(key string) (V, bool) {
	var zero V
	n := t.root
	for n != nil {
		i, ok := n.find(key)
		if ok {
			return n.items[i].value, true
		}
		if n.leaf() {
			return zero, false
		}
		n = n.children[i]
	}
	return zero, false
}

// Has reports whether key is present.
func (t *Tree[V]) Has(key string) bool {
	_, ok := t.Get(key)
	return ok
}

// Set inserts or replaces the value under key, reporting whether the key
// was newly inserted.
func (t *Tree[V]) Set(key string, value V) bool {
	if t.root == nil {
		t.root = &node[V]{cow: t.cow, items: []item[V]{{key, value}}}
		t.size = 1
		return true
	}
	t.root = t.mutable(t.root)
	if len(t.root.items) >= t.maxItems() {
		old := t.root
		t.root = &node[V]{cow: t.cow, children: []*node[V]{old}}
		t.splitChild(t.root, 0)
	}
	inserted := t.insertNonFull(t.root, key, value)
	if inserted {
		t.size++
	}
	return inserted
}

// splitChild splits the full child parent.children[i] around its median.
// The parent must already be mutable.
func (t *Tree[V]) splitChild(parent *node[V], i int) {
	child := t.mutableChild(parent, i)
	mid := t.degree - 1
	median := child.items[mid]

	right := &node[V]{cow: t.cow, items: append([]item[V](nil), child.items[mid+1:]...)}
	if !child.leaf() {
		right.children = append([]*node[V](nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.items = child.items[:mid]

	parent.items = append(parent.items, item[V]{})
	copy(parent.items[i+1:], parent.items[i:])
	parent.items[i] = median

	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
}

func (t *Tree[V]) insertNonFull(n *node[V], key string, value V) bool {
	for {
		i, ok := n.find(key)
		if ok {
			n.items[i].value = value
			return false
		}
		if n.leaf() {
			n.items = append(n.items, item[V]{})
			copy(n.items[i+1:], n.items[i:])
			n.items[i] = item[V]{key, value}
			return true
		}
		if len(n.children[i].items) >= t.maxItems() {
			t.splitChild(n, i)
			// After the split the median moved up to position i; re-route.
			switch {
			case key == n.items[i].key:
				n.items[i].value = value
				return false
			case key > n.items[i].key:
				i++
			}
		}
		n = t.mutableChild(n, i)
	}
}

// Delete removes key, reporting whether it was present.
func (t *Tree[V]) Delete(key string) bool {
	if t.root == nil {
		return false
	}
	t.root = t.mutable(t.root)
	deleted := t.delete(t.root, key)
	if len(t.root.items) == 0 {
		if t.root.leaf() {
			t.root = nil
		} else {
			t.root = t.root.children[0]
		}
	}
	if deleted {
		t.size--
	}
	return deleted
}

// delete removes key from the subtree rooted at n, which must already be
// mutable; children are made mutable on the way down.
func (t *Tree[V]) delete(n *node[V], key string) bool {
	i, found := n.find(key)
	if n.leaf() {
		if !found {
			return false
		}
		n.items = append(n.items[:i], n.items[i+1:]...)
		return true
	}
	if found {
		// Replace with predecessor (which lives in a leaf) then delete it
		// from the child, growing the child first if needed.
		child := t.mutableChild(n, i)
		if len(child.items) > t.minItems() {
			pred := maxItem(child)
			n.items[i] = pred
			return t.delete(child, pred.key)
		}
		if right := n.children[i+1]; len(right.items) > t.minItems() {
			right = t.mutableChild(n, i+1)
			succ := minItem(right)
			n.items[i] = succ
			return t.delete(right, succ.key)
		}
		// Both neighbors minimal: merge child, separator, right.
		t.mergeChildren(n, i)
		return t.delete(child, key)
	}
	// Key lives in subtree i; ensure the child can lose an item.
	if len(n.children[i].items) <= t.minItems() {
		i = t.grow(n, i)
	}
	return t.delete(t.mutableChild(n, i), key)
}

// grow makes n.children[i] have more than minItems items, by borrowing
// from a sibling or merging. n must be mutable; grow makes the children
// it rearranges mutable. It returns the (possibly shifted) child index.
func (t *Tree[V]) grow(n *node[V], i int) int {
	if i > 0 && len(n.children[i-1].items) > t.minItems() {
		// Borrow from left sibling through the separator.
		child := t.mutableChild(n, i)
		left := t.mutableChild(n, i-1)
		child.items = append(child.items, item[V]{})
		copy(child.items[1:], child.items)
		child.items[0] = n.items[i-1]
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if !left.leaf() {
			moved := left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
			child.children = append(child.children, nil)
			copy(child.children[1:], child.children)
			child.children[0] = moved
		}
		return i
	}
	if i < len(n.children)-1 && len(n.children[i+1].items) > t.minItems() {
		// Borrow from right sibling.
		child := t.mutableChild(n, i)
		right := t.mutableChild(n, i+1)
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		right.items = append(right.items[:0], right.items[1:]...)
		if !right.leaf() {
			moved := right.children[0]
			right.children = append(right.children[:0], right.children[1:]...)
			child.children = append(child.children, moved)
		}
		return i
	}
	// Merge with a sibling.
	if i > 0 {
		t.mergeChildren(n, i-1)
		return i - 1
	}
	t.mergeChildren(n, i)
	return i
}

// mergeChildren merges n.children[i], n.items[i] and n.children[i+1].
// n must be mutable; the left child is made mutable (the right is only
// read and then dropped, so it may stay shared).
func (t *Tree[V]) mergeChildren(n *node[V], i int) {
	left := t.mutableChild(n, i)
	right := n.children[i+1]
	left.items = append(left.items, n.items[i])
	left.items = append(left.items, right.items...)
	left.children = append(left.children, right.children...)
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

func maxItem[V any](n *node[V]) item[V] {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

func minItem[V any](n *node[V]) item[V] {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0]
}

// Ascend visits all keys in order until fn returns false.
func (t *Tree[V]) Ascend(fn func(key string, value V) bool) {
	t.ascendRange(t.root, "", "", false, false, fn)
}

// AscendRange visits keys in [lo, hi) in order until fn returns false.
func (t *Tree[V]) AscendRange(lo, hi string, fn func(key string, value V) bool) {
	t.ascendRange(t.root, lo, hi, true, true, fn)
}

// AscendFrom visits keys >= lo in order until fn returns false.
func (t *Tree[V]) AscendFrom(lo string, fn func(key string, value V) bool) {
	t.ascendRange(t.root, lo, "", true, false, fn)
}

// AscendPrefix visits keys with the given prefix in order.
func (t *Tree[V]) AscendPrefix(prefix string, fn func(key string, value V) bool) {
	if prefix == "" {
		t.Ascend(fn)
		return
	}
	// The smallest string greater than every prefixed key: bump the last
	// byte (prefix bytes are below 0xff in our usage; fall back to
	// unbounded if not).
	end := prefixEnd(prefix)
	if end == "" {
		t.ascendRange(t.root, prefix, "", true, false, fn)
		return
	}
	t.AscendRange(prefix, end, fn)
}

func prefixEnd(prefix string) string {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] < 0xff {
			b[i]++
			return string(b[:i+1])
		}
	}
	return ""
}

func (t *Tree[V]) ascendRange(n *node[V], lo, hi string, useLo, useHi bool, fn func(string, V) bool) bool {
	if n == nil {
		return true
	}
	i := 0
	if useLo {
		i = sort.Search(len(n.items), func(i int) bool { return n.items[i].key >= lo })
	}
	for ; i < len(n.items); i++ {
		if !n.leaf() {
			if !t.ascendRange(n.children[i], lo, hi, useLo, useHi, fn) {
				return false
			}
		}
		if useHi && n.items[i].key >= hi {
			return false
		}
		if !fn(n.items[i].key, n.items[i].value) {
			return false
		}
		// Once we've emitted an item, every following key exceeds lo.
		useLo = false
	}
	if !n.leaf() {
		return t.ascendRange(n.children[len(n.children)-1], lo, hi, useLo, useHi, fn)
	}
	return true
}

// Min returns the smallest key, or ok=false when empty.
func (t *Tree[V]) Min() (string, V, bool) {
	var zero V
	if t.root == nil || t.size == 0 {
		return "", zero, false
	}
	it := minItem(t.root)
	return it.key, it.value, true
}

// Max returns the largest key, or ok=false when empty.
func (t *Tree[V]) Max() (string, V, bool) {
	var zero V
	if t.root == nil || t.size == 0 {
		return "", zero, false
	}
	it := maxItem(t.root)
	return it.key, it.value, true
}

// CheckInvariants validates B-tree structural invariants; tests call it
// after mutation storms. It returns an error describing the first
// violation found.
func (t *Tree[V]) CheckInvariants() error {
	if t.root == nil {
		if t.size != 0 {
			return fmt.Errorf("btree: nil root but size %d", t.size)
		}
		return nil
	}
	count := 0
	var depthSeen = -1
	var walk func(n *node[V], depth int, lo, hi string, haveLo, haveHi bool) error
	walk = func(n *node[V], depth int, lo, hi string, haveLo, haveHi bool) error {
		if n != t.root {
			if len(n.items) < t.minItems() {
				return fmt.Errorf("btree: node with %d items below minimum %d", len(n.items), t.minItems())
			}
		}
		if len(n.items) > t.maxItems() {
			return fmt.Errorf("btree: node with %d items above maximum %d", len(n.items), t.maxItems())
		}
		for i := 0; i < len(n.items); i++ {
			k := n.items[i].key
			if i > 0 && n.items[i-1].key >= k {
				return fmt.Errorf("btree: unsorted items %q >= %q", n.items[i-1].key, k)
			}
			if haveLo && k <= lo {
				return fmt.Errorf("btree: key %q <= subtree lower bound %q", k, lo)
			}
			if haveHi && k >= hi {
				return fmt.Errorf("btree: key %q >= subtree upper bound %q", k, hi)
			}
		}
		count += len(n.items)
		if n.leaf() {
			if depthSeen == -1 {
				depthSeen = depth
			} else if depth != depthSeen {
				return fmt.Errorf("btree: leaves at depths %d and %d", depthSeen, depth)
			}
			return nil
		}
		if len(n.children) != len(n.items)+1 {
			return fmt.Errorf("btree: %d children for %d items", len(n.children), len(n.items))
		}
		for i, c := range n.children {
			clo, chaveLo := lo, haveLo
			chi, chaveHi := hi, haveHi
			if i > 0 {
				clo, chaveLo = n.items[i-1].key, true
			}
			if i < len(n.items) {
				chi, chaveHi = n.items[i].key, true
			}
			if err := walk(c, depth+1, clo, chi, chaveLo, chaveHi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0, "", "", false, false); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("btree: counted %d items, size says %d", count, t.size)
	}
	return nil
}

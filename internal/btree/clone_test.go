package btree

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func fill(t *Tree[int], n int) {
	for i := 0; i < n; i++ {
		t.Set(fmt.Sprintf("k%06d", i), i)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := NewDefault[int]()
	fill(a, 2000)
	b := a.Clone()

	// Writes to a are invisible in b and vice versa.
	a.Set("k000000", -1)
	a.Delete("k000001")
	a.Set("new-a", 1)
	b.Set("k000002", -2)
	b.Delete("k000003")
	b.Set("new-b", 2)

	if v, _ := b.Get("k000000"); v != 0 {
		t.Fatalf("clone saw original's write: %d", v)
	}
	if !b.Has("k000001") {
		t.Fatal("clone saw original's delete")
	}
	if b.Has("new-a") {
		t.Fatal("clone saw original's insert")
	}
	if v, _ := a.Get("k000002"); v != 2 {
		t.Fatalf("original saw clone's write: %d", v)
	}
	if !a.Has("k000003") {
		t.Fatal("original saw clone's delete")
	}
	if a.Has("new-b") {
		t.Fatal("original saw clone's insert")
	}
	if a.Len() != 2000 || b.Len() != 2000 {
		t.Fatalf("sizes = %d, %d", a.Len(), b.Len())
	}
	for _, tree := range []*Tree[int]{a, b} {
		if err := tree.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCloneSurvivesMutationStorm(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := NewDefault[int]()
	fill(a, 500)
	// Take snapshots at random points while hammering the original with
	// inserts and deletes; every snapshot must stay frozen.
	type snap struct {
		tree *Tree[int]
		len  int
	}
	var snaps []snap
	live := map[string]bool{}
	for i := 0; i < 500; i++ {
		live[fmt.Sprintf("k%06d", i)] = true
	}
	for op := 0; op < 20_000; op++ {
		k := fmt.Sprintf("k%06d", r.Intn(2000))
		if r.Intn(2) == 0 {
			a.Set(k, op)
			live[k] = true
		} else {
			a.Delete(k)
			delete(live, k)
		}
		if op%2500 == 0 {
			snaps = append(snaps, snap{a.Clone(), a.Len()})
		}
	}
	if a.Len() != len(live) {
		t.Fatalf("live size = %d, want %d", a.Len(), len(live))
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i, s := range snaps {
		if s.tree.Len() != s.len {
			t.Fatalf("snapshot %d size drifted: %d -> %d", i, s.len, s.tree.Len())
		}
		if err := s.tree.CheckInvariants(); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		prev := ""
		s.tree.Ascend(func(k string, _ int) bool {
			if prev != "" && k <= prev {
				t.Fatalf("snapshot %d out of order: %q after %q", i, k, prev)
			}
			prev = k
			return true
		})
	}
}

func TestCloneOfClone(t *testing.T) {
	a := NewDefault[int]()
	fill(a, 300)
	b := a.Clone()
	b.Set("only-b", 1)
	c := b.Clone()
	c.Delete("only-b")
	c.Set("only-c", 2)
	if !b.Has("only-b") || b.Has("only-c") {
		t.Fatal("second-generation clone leaked into parent")
	}
	if a.Has("only-b") || a.Has("only-c") {
		t.Fatal("grandparent saw descendants' writes")
	}
	for _, tree := range []*Tree[int]{a, b, c} {
		if err := tree.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCloneConcurrentReadsDuringWrites is the property the relational
// engine's snapshot reads rely on: a clone handed to readers is safe to
// iterate, with no synchronization, while the original mutates. Run under
// -race this validates the copy-on-write discipline.
func TestCloneConcurrentReadsDuringWrites(t *testing.T) {
	a := NewDefault[int]()
	fill(a, 5000)
	snapshot := a.Clone()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := 0
				snapshot.Ascend(func(string, int) bool { n++; return true })
				if n != 5000 {
					t.Errorf("snapshot iteration saw %d keys", n)
					return
				}
				if _, ok := snapshot.Get(fmt.Sprintf("k%06d", w*1000)); !ok {
					t.Error("snapshot lost a key")
					return
				}
			}
		}(w)
	}
	r := rand.New(rand.NewSource(2))
	for op := 0; op < 30_000; op++ {
		k := fmt.Sprintf("k%06d", r.Intn(10_000))
		if r.Intn(2) == 0 {
			a.Set(k, op)
		} else {
			a.Delete(k)
		}
	}
	close(stop)
	wg.Wait()
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCloneThenWrite(b *testing.B) {
	a := NewDefault[int]()
	fill(a, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Clone() // snapshot per write batch, as the engine publishes
		a.Set(fmt.Sprintf("k%06d", i%200_000), i)
	}
}

package pool

import (
	"bytes"
	"fmt"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct{ n, class int }{
		{0, 0}, {1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{1 << 20, maxClassBits - minClassBits}, {1<<20 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestGetBytesSizes(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 1 << 20, 1<<20 + 5} {
		b := GetBytes(n)
		if len(b) != n {
			t.Fatalf("GetBytes(%d) returned len %d", n, len(b))
		}
		PutBytes(b)
	}
}

func TestPutBytesRejectsOddCaps(t *testing.T) {
	// Buffers grown past their class (non-power-of-two cap) or beyond the
	// largest class must be dropped, not pooled under a wrong class.
	PutBytes(make([]byte, 0, 100))
	PutBytes(make([]byte, 2<<20))
	PutBytes(nil)
	b := GetBytes(100)
	if cap(b) != 128 {
		t.Fatalf("GetBytes(100) cap = %d, want the 128-byte class", cap(b))
	}
}

// TestPoolAliasing pins the copy-on-checkout contract end to end: data a
// consumer copied out of pooled storage survives the buffer's return and
// reuse, and storage handed back to a pool retains no references to live
// values.
func TestPoolAliasing(t *testing.T) {
	t.Run("bytes", func(t *testing.T) {
		// A "record" copied out of a pooled buffer must be immune to the
		// buffer's next user scribbling over the same backing array.
		records := make([]string, 0, 64)
		for i := 0; i < 64; i++ {
			b := GetBytes(256)
			payload := fmt.Sprintf("record-%03d", i)
			copy(b, payload)
			records = append(records, string(b[:len(payload)])) // copy-on-checkout
			PutBytes(b)
			next := GetBytes(256)
			for j := range next {
				next[j] = 0xFF
			}
			PutBytes(next)
		}
		for i, r := range records {
			if want := fmt.Sprintf("record-%03d", i); r != want {
				t.Fatalf("record %d corrupted by pooled-buffer reuse: %q", i, r)
			}
		}
	})

	t.Run("slice", func(t *testing.T) {
		var p Slice[string]
		s := p.Get(4)
		s = append(s, "alpha", "beta")
		alias := s[:2] // what a leaked view of pooled storage would see
		p.Put(s)
		for i, v := range alias {
			if v != "" {
				t.Fatalf("Put left element %d = %q; pooled storage must drop its references", i, v)
			}
		}
	})

	t.Run("arena", func(t *testing.T) {
		type entry struct{ value string }
		var a Arena[entry]
		e1 := a.New()
		e1.value = "live-value"
		copied := e1.value // the store's copy-out under its lock
		a.Free(e1)
		if e1.value != "" {
			t.Fatalf("Free must zero the slot, got %q", e1.value)
		}
		e2 := a.New()
		if e2 != e1 {
			t.Fatalf("New did not recycle the freed slot")
		}
		if e2.value != "" {
			t.Fatalf("recycled slot not zeroed: %q", e2.value)
		}
		e2.value = "overwritten"
		if copied != "live-value" {
			t.Fatalf("copied value corrupted by arena reuse: %q", copied)
		}
	})
}

func TestSliceGrowsToHint(t *testing.T) {
	var p Slice[int]
	s := p.Get(4)
	s = append(s, 1, 2, 3, 4)
	p.Put(s)
	big := p.Get(1024)
	if cap(big) < 1024 {
		t.Fatalf("Get(1024) returned cap %d", cap(big))
	}
	p.Put(big)
}

func TestArenaBlocks(t *testing.T) {
	var a Arena[[16]byte]
	ptrs := make(map[*[16]byte]bool)
	for i := 0; i < 3*arenaBlock; i++ {
		p := a.New()
		if ptrs[p] {
			t.Fatalf("New returned a live pointer twice")
		}
		ptrs[p] = true
	}
	if len(a.blocks) != 3 {
		t.Fatalf("got %d blocks, want 3", len(a.blocks))
	}
	// Free everything, reallocate: no new blocks needed.
	for p := range ptrs {
		a.Free(p)
	}
	for i := 0; i < 3*arenaBlock; i++ {
		a.New()
	}
	if len(a.blocks) != 3 {
		t.Fatalf("free-list reuse still grew to %d blocks", len(a.blocks))
	}
	a.Reset()
	if len(a.blocks) != 0 || len(a.free) != 0 {
		t.Fatalf("Reset left state behind")
	}
}

func TestGetBytesZeroAfterPattern(t *testing.T) {
	// GetBytes makes no cleanliness promise, but len must be exact and
	// writes within len must stick.
	b := GetBytes(33)
	copy(b, bytes.Repeat([]byte{0xAB}, 33))
	for _, x := range b {
		if x != 0xAB {
			t.Fatal("write did not stick")
		}
	}
	PutBytes(b)
}

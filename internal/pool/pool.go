// Package pool is the allocation-reuse layer under the hot paths: a
// size-classed sync.Pool of byte buffers (wire frames, AOF encode
// scratch), a generic pool of scratch slices (kvstore copy-outs), and a
// block arena with a free list (per-stripe entry staging). The shared
// safety contract is copy-on-checkout: anything handed back to a pool
// must never be reachable from a still-live record, so every consumer
// copies data out of pooled storage before releasing it. TestPoolAliasing
// pins that contract.
package pool

import "sync"

// Byte-buffer size classes: powers of two from 64 B to 1 MiB. Larger
// requests fall through to plain allocation and are dropped on Put, so
// one pathological frame cannot pin megabytes in every pool shard.
const (
	minClassBits = 6
	maxClassBits = 20
)

var byteClasses [maxClassBits - minClassBits + 1]sync.Pool

// classFor returns the index of the smallest class holding n bytes, or
// -1 when n is beyond the largest class.
func classFor(n int) int {
	for c := minClassBits; c <= maxClassBits; c++ {
		if n <= 1<<c {
			return c - minClassBits
		}
	}
	return -1
}

// GetBytes returns a buffer of length n (capacity possibly larger) from
// the size-classed pool, allocating when the class is empty or n exceeds
// the largest class.
func GetBytes(n int) []byte {
	c := classFor(n)
	if c < 0 {
		return make([]byte, n)
	}
	if v := byteClasses[c].Get(); v != nil {
		return (*v.(*[]byte))[:n]
	}
	return make([]byte, n, 1<<(c+minClassBits))
}

// PutBytes returns b to its size class. Buffers whose capacity is not an
// exact class size (grown by append, or beyond the largest class) are
// dropped. The caller must not retain any view of b afterwards.
func PutBytes(b []byte) {
	c := cap(b)
	if c == 0 || c&(c-1) != 0 || c < 1<<minClassBits || c > 1<<maxClassBits {
		return
	}
	b = b[:c]
	byteClasses[classFor(c)].Put(&b)
}

// Slice pools scratch []T buffers. Put clears the elements (dropping the
// string/pointer references they held, so pooling never extends an
// object's lifetime) and Get hands the empty slice back at capacity.
// The zero value is ready to use.
type Slice[T any] struct{ p sync.Pool }

// Get returns an empty slice with capacity at least capHint.
func (s *Slice[T]) Get(capHint int) []T {
	if v := s.p.Get(); v != nil {
		sl := *v.(*[]T)
		if cap(sl) >= capHint {
			return sl[:0]
		}
	}
	return make([]T, 0, capHint)
}

// Put returns v to the pool. The caller must not retain v or any element
// view of it.
func (s *Slice[T]) Put(v []T) {
	if cap(v) == 0 {
		return
	}
	v = v[:cap(v)]
	clear(v)
	v = v[:0]
	s.p.Put(&v)
}

// arenaBlock is the Arena allocation granule. 256 entries amortizes the
// block allocation without parking large dead blocks on small stripes.
const arenaBlock = 256

// Arena is a block allocator with a free list for fixed-size T values —
// the memblock idiom: New pops a recycled slot (or extends the current
// block), Free recycles one, Reset drops everything. It is NOT safe for
// concurrent use; the kvstore guards each stripe's arena with that
// stripe's lock. Freed values are zeroed immediately so the arena never
// pins the strings they referenced.
type Arena[T any] struct {
	blocks [][]T
	free   []*T
}

// New returns a zeroed *T, recycling a freed slot when one exists.
func (a *Arena[T]) New() *T {
	if n := len(a.free); n > 0 {
		p := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		return p
	}
	if n := len(a.blocks); n == 0 || len(a.blocks[n-1]) == cap(a.blocks[n-1]) {
		a.blocks = append(a.blocks, make([]T, 0, arenaBlock))
	}
	b := &a.blocks[len(a.blocks)-1]
	var zero T
	*b = append(*b, zero)
	return &(*b)[len(*b)-1]
}

// Free recycles p for a later New. p must come from this arena and must
// not be referenced after the call; it is zeroed here so whatever it
// pointed to is immediately collectable.
func (a *Arena[T]) Free(p *T) {
	var zero T
	*p = zero
	a.free = append(a.free, p)
}

// Reset drops every block and the free list (FLUSHALL).
func (a *Arena[T]) Reset() {
	a.blocks = nil
	a.free = nil
}

package experiments

import (
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/ycsb"
)

func init() {
	register("F7a", func(s Scale) (Result, error) { return runScaleYCSB("redis", s) })
	register("F7b", func(s Scale) (Result, error) { return runScaleGDPR("redis", false, s) })
	register("F8a", func(s Scale) (Result, error) { return runScaleYCSB("postgres", s) })
	register("F8b", func(s Scale) (Result, error) { return runScaleGDPR("postgres", true, s) })
}

// runScaleYCSB reproduces Figures 7a/8a: the time a compliant engine
// takes to complete a fixed 10K-operation YCSB workload C as the database
// grows. The paper shows a flat curve — completion time is a function of
// operation count only.
func runScaleYCSB(engine string, scale Scale) (Result, error) {
	sizes := []int{10_000, 50_000, 100_000}
	ops := 10_000
	if scale == Paper {
		sizes = []int{10_000, 100_000, 1_000_000, 10_000_000}
	}
	id := "F7a"
	title := "Redis"
	if engine == "postgres" {
		id = "F8a"
		title = "PostgreSQL"
	}
	res := Result{
		ID:     id,
		Title:  fmt.Sprintf("%s: YCSB-C completion time vs DB size (Figure %s)", title, id[1:]),
		Header: []string{"Total records", "Completion time"},
	}
	combined := featureSet{name: "combined", encrypt: true, ttl: true, log: true}
	for _, n := range sizes {
		cfg := ycsb.Config{Records: n, Operations: ops, Threads: 8, Seed: 1}
		dir, err := os.MkdirTemp("", "gdprbench-scale-*")
		if err != nil {
			return res, err
		}
		kv, cleanup, err := buildYCSBEngine(engine, combined, dir)
		if err != nil {
			os.RemoveAll(dir)
			return res, err
		}
		if _, err := ycsb.Load(kv, cfg); err != nil {
			cleanup()
			os.RemoveAll(dir)
			return res, err
		}
		// Median of three runs damps TTL-daemon and GC interference.
		var walls []time.Duration
		var runErr error
		for i := 0; i < 3; i++ {
			run, err := ycsb.Run(kv, "C", cfg)
			if err != nil {
				runErr = err
				break
			}
			walls = append(walls, run.WallTime())
		}
		cleanup()
		os.RemoveAll(dir)
		if runErr != nil {
			return res, runErr
		}
		sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", n), walls[1].Round(time.Millisecond).String(),
		})
	}
	res.Notes = append(res.Notes,
		"paper: completion time virtually constant across 3 orders of magnitude of DB size")
	return res, nil
}

// runScaleGDPR reproduces Figures 7b/8b: the time a compliant engine
// takes to complete a fixed number of GDPRbench customer-workload
// operations as the volume of personal data grows. The paper shows Redis
// growing linearly with DB size; PostgreSQL with metadata indices grows
// only moderately.
func runScaleGDPR(engine string, indexed bool, scale Scale) (Result, error) {
	sizes := []int{1_000, 2_000, 4_000}
	ops := 400
	if scale == Paper {
		sizes = []int{100_000, 200_000, 300_000, 400_000, 500_000}
		ops = 10_000
	}
	id := "F7b"
	title := "Redis"
	if engine == "postgres" {
		id = "F8b"
		title = "PostgreSQL + metadata indices"
	}
	res := Result{
		ID:     id,
		Title:  fmt.Sprintf("%s: GDPRbench customer completion time vs personal-data volume (Figure %s)", title, id[1:]),
		Header: []string{"Personal records", "Completion time"},
	}
	for _, n := range sizes {
		cfg := core.Config{Records: n, Operations: ops, Threads: 8, Seed: 1}.WithDefaults()
		// Median of three fresh loads+runs damps first-run warmup noise.
		var walls []time.Duration
		for i := 0; i < 3; i++ {
			runs, _, err := gdprRun(engine, indexed, cfg, []core.WorkloadName{core.Customer})
			if err != nil {
				return res, err
			}
			walls = append(walls, runs[core.Customer].WallTime())
		}
		sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", n), walls[1].Round(time.Millisecond).String(),
		})
	}
	if engine == "redis" {
		res.Notes = append(res.Notes,
			"paper: completion time grows linearly with personal-data volume (O(n) metadata scans)")
	} else {
		res.Notes = append(res.Notes,
			"paper: growth is muted thanks to secondary indices, with some index-maintenance overhead at scale")
	}
	return res, nil
}

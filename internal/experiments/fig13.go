package experiments

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/acl"
	"repro/internal/core"
	"repro/internal/gdpr"
	"repro/internal/stats"
)

func init() {
	register("F13", runStreamingExport)
}

// runStreamingExport is the F13 experiment: a subject-access export
// (G 15 / G 20 — read every record of one data subject) running
// concurrently with live point-GET traffic, streamed through the
// chunked cursor path versus materialized in one Select. Three legs on
// the Redis-model engine (striped, metadata-indexed):
//
//	no-export     — GET traffic alone; the latency baseline
//	streamed      — export via ReadDataStream (O(chunk) memory,
//	                stripe locks held per chunk)
//	materialized  — export via ReadData (O(result) memory, the
//	                pre-streaming ablation)
//
// Reported per leg: exports completed, mean export time, the process
// heap high-water delta over the measured window, and the foreground
// GET p99. The streaming claim is that the export stops costing
// O(result) memory and stops head-of-line-blocking point reads.
func runStreamingExport(scale Scale) (Result, error) {
	records, gets, threads := 24_000, 20_000, 4
	if scale == Paper {
		records, gets, threads = 1_000_000, 100_000, 8
	}
	res := Result{
		ID:     "F13",
		Title:  "Streaming subject export vs materialized under live GETs (F13)",
		Header: []string{"Leg", "Exports", "Export mean", "Heap HW delta", "GET p99"},
	}
	for _, leg := range []string{"no-export", "streamed", "materialized"} {
		row, err := exportLeg(leg, records, gets, threads)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("one subject owns %d of %d records; export chunk %d", records/8, records, core.DefaultStreamChunk),
		"redis model, 4 kvstore stripes, metadata indexing on; heap high-water sampled from runtime.ReadMemStats (HeapInuse) over the measured window",
		"streamed export holds per-stripe read locks per chunk and buffers O(chunk); materialized holds them per index probe but buffers the full O(result) slice",
	)
	return res, nil
}

// exportLeg loads a dataset whose subject 0 owns 1/8 of all records,
// then runs the foreground GET loop while the requested export mode
// loops in the background, and reports the F13 row.
func exportLeg(leg string, records, gets, threads int) ([]string, error) {
	dir, err := os.MkdirTemp("", "gdprbench-f13-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	db, err := core.OpenRedis(core.RedisConfig{
		Dir:        dir,
		Compliance: core.Compliance{AccessControl: true, MetadataIndexing: true},
		KVStripes:  4, DisableBackgroundExpiry: true,
	})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	cfg := core.Config{
		Records: records, Operations: gets, Threads: threads, Seed: 1,
		RecordsPerUser: records / 8, // 8 subjects; subject 0's export is 1/8 of the store
	}
	ds, _, err := core.Load(db, cfg, nil)
	if err != nil {
		return nil, err
	}

	// Settle the post-load heap so the high-water delta is attributable
	// to the measured window, then sample HeapInuse until the leg ends.
	runtime.GC()
	base := heapInuse()
	stopSampler := make(chan struct{})
	var samplerWG sync.WaitGroup
	var heapHW atomic.Int64
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopSampler:
				return
			case <-tick.C:
				if h := heapInuse(); h > heapHW.Load() {
					heapHW.Store(h)
				}
			}
		}
	}()

	// The background export loop: subject 0 reads their own records,
	// streamed or materialized, over and over until the foreground
	// GET traffic completes.
	subject := ds.CustomerActor(0)
	sel := gdpr.ByUser(ds.UserName(0))
	stopExport := make(chan struct{})
	var exportWG sync.WaitGroup
	var exports atomic.Int64
	var exportNS atomic.Int64
	var exportErr error
	if leg != "no-export" {
		exportWG.Add(1)
		go func() {
			defer exportWG.Done()
			for {
				select {
				case <-stopExport:
					return
				default:
				}
				t0 := time.Now()
				var err error
				if leg == "streamed" {
					err = streamExport(db, subject, sel)
				} else {
					_, err = db.ReadData(subject, sel)
				}
				if err != nil {
					exportErr = err
					return
				}
				exports.Add(1)
				exportNS.Add(time.Since(t0).Nanoseconds())
			}
		}()
	}

	// Foreground: closed-loop point GETs, each customer reading one of
	// their own records by key.
	lat := stats.NewHistogram()
	var next atomic.Int64
	var getErr atomic.Value
	var getWG sync.WaitGroup
	for t := 0; t < threads; t++ {
		getWG.Add(1)
		go func(t int) {
			defer getWG.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(gets) {
					return
				}
				k := int(i*7919) % records
				t0 := time.Now()
				_, err := db.ReadData(ds.CustomerActor(ds.OwnerOfKey(k)), gdpr.ByKey(ds.KeyAt(k)))
				lat.Record(time.Since(t0))
				if err != nil {
					getErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(t)
	}
	getWG.Wait()
	close(stopExport)
	exportWG.Wait()
	close(stopSampler)
	samplerWG.Wait()
	if err, _ := getErr.Load().(error); err != nil {
		return nil, fmt.Errorf("experiments: F13 %s GET: %w", leg, err)
	}
	if exportErr != nil {
		return nil, fmt.Errorf("experiments: F13 %s export: %w", leg, exportErr)
	}

	n := exports.Load()
	meanExport := "-"
	if n > 0 {
		meanExport = (time.Duration(exportNS.Load()) / time.Duration(n)).Round(time.Microsecond).String()
	}
	delta := heapHW.Load() - base
	if delta < 0 {
		delta = 0
	}
	return []string{
		leg,
		fmt.Sprintf("%d", n),
		meanExport,
		fmt.Sprintf("%.1fMB", float64(delta)/(1<<20)),
		lat.Percentile(99).Round(time.Microsecond).String(),
	}, nil
}

// streamExport consumes one full streamed export chunk by chunk,
// discarding each — the bounded-memory consumer a real export pipeline
// (say, writing to a socket or file) would be.
func streamExport(db core.DB, a acl.Actor, sel gdpr.Selector) error {
	sr, ok := db.(core.StreamReader)
	if !ok {
		return fmt.Errorf("experiments: DB %T does not stream", db)
	}
	cur, err := sr.ReadDataStream(a, sel, core.DefaultStreamChunk)
	if err != nil {
		return err
	}
	defer cur.Close()
	for {
		if _, err := cur.Next(); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

func heapInuse() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapInuse)
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gdpr"
)

func init() {
	register("F10", runMetadataIndexingGap)
}

// runMetadataIndexingGap is the F10 experiment, the F3-style
// microbenchmark for the metadata-index layer: completion time of a fixed
// batch of equality attribute reads (the BY-USR/BY-PUR shapes that
// dominate GDPR workloads) as the record count grows, with metadata
// indexing off (the paper's Redis scan profile / unindexed PostgreSQL)
// and on (inverted + ordered-expiry indexes in the kvstore, per-column
// secondary B-trees in the relstore). The paper shows the scan legs
// degrading linearly with volume (§6.3, Figures 5b vs 5c); the indexed
// legs stay O(result) and flat.
func runMetadataIndexingGap(scale Scale) (Result, error) {
	sizes := []int{1_000, 4_000}
	reads := 150
	if scale == Paper {
		sizes = []int{10_000, 50_000, 100_000}
		reads = 500
	}
	res := Result{
		ID:     "F10",
		Title:  "Metadata indexing: attribute-read completion, indexed vs scan (F10)",
		Header: []string{"Records", "Redis scan", "Redis indexed", "PostgreSQL scan", "PostgreSQL indexed"},
	}
	for _, n := range sizes {
		row := []string{fmt.Sprintf("%d", n)}
		for _, engine := range []string{"redis", "postgres"} {
			for _, indexed := range []bool{false, true} {
				wall, err := attributeReadRun(engine, indexed, n, reads)
				if err != nil {
					return res, err
				}
				row = append(row, wall.Round(time.Microsecond).String())
			}
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"paper: metadata queries collapse to full scans without secondary indexes (§6.2) and degrade linearly with volume (§6.3)",
		"beyond the paper: the indexed Redis legs use the kvstore's inverted metadata index — the retrofit the paper stopped short of",
	)
	return res, nil
}

// openBare builds a daemonless, in-memory engine of the requested model
// with the given compliance set — the shared open path for
// microbenchmark-style experiments that isolate one cost axis.
func openBare(engine string, comp core.Compliance) (core.DB, error) {
	switch engine {
	case "redis":
		return core.OpenRedis(core.RedisConfig{Compliance: comp, DisableBackgroundExpiry: true})
	case "postgres":
		return core.OpenPostgres(core.PostgresConfig{Compliance: comp, DisableTTLDaemon: true})
	default:
		return nil, fmt.Errorf("experiments: unknown engine %q", engine)
	}
}

// attributeReadRun loads n records into a fresh in-memory engine and
// times `reads` alternating BY-USR / BY-PUR data reads.
func attributeReadRun(engine string, indexed bool, n, reads int) (time.Duration, error) {
	db, err := openBare(engine, core.Compliance{AccessControl: true, Strict: true, MetadataIndexing: indexed})
	if err != nil {
		return 0, err
	}
	defer db.Close()
	cfg := core.Config{Records: n, Seed: 1}.WithDefaults()
	ds, _, err := core.Load(db, cfg, nil)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < reads; i++ {
		var sel gdpr.Selector
		var actor = core.ControllerActor()
		if i%2 == 0 {
			sel = gdpr.ByUser(ds.UserName(i % ds.Users))
		} else {
			sel = gdpr.ByPurpose(ds.PurposeName(i % cfg.Purposes))
		}
		recs, err := db.ReadData(actor, sel)
		if err != nil {
			return 0, err
		}
		if i%2 == 0 && len(recs) == 0 {
			return 0, fmt.Errorf("experiments: BY-USR read matched nothing at %d records", n)
		}
	}
	return time.Since(start), nil
}

package experiments

import (
	"fmt"
	"os"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
)

func init() {
	register("F12", runAuditPipeline)
}

// runAuditPipeline is the F12 experiment: workload completion time of
// the same GDPR customer workload as the audit append pipeline sweeps
// sync → batched → async, next to a no-logging baseline. Both source
// papers identify monitoring/logging as the dominant cause of the 2–5x
// GDPR slowdown; F12 measures how much of that overhead the pipeline
// rebuild recovers. The audit trail runs in its strict durable
// configuration (fsync per commit): that is where the old inline path —
// every operation encoding, writing and fsyncing under one global lock —
// hurts most, and where group commit (batched) and fire-and-forget
// staging (async) recover it.
func runAuditPipeline(scale Scale) (Result, error) {
	records, ops, threads := 1_200, 400, 4
	if scale == Paper {
		records, ops, threads = 20_000, 5_000, 8
	}
	res := Result{
		ID:     "F12",
		Title:  "Audit pipeline ablation: sync vs batched vs async appends (F12)",
		Header: []string{"Engine", "no-log", "sync", "batched", "async", "sync/async"},
	}
	for _, engine := range []string{"redis", "postgres"} {
		row := []string{engine}
		var syncWall, asyncWall time.Duration
		baseline, err := auditLeg(engine, false, audit.PipeSync, records, ops, threads)
		if err != nil {
			return res, err
		}
		row = append(row, baseline.Round(time.Microsecond).String())
		for _, policy := range []audit.Pipeline{audit.PipeSync, audit.PipeBatched, audit.PipeAsync} {
			wall, err := auditLeg(engine, true, policy, records, ops, threads)
			if err != nil {
				return res, err
			}
			row = append(row, wall.Round(time.Microsecond).String())
			switch policy {
			case audit.PipeSync:
				syncWall = wall
			case audit.PipeAsync:
				asyncWall = wall
			}
		}
		row = append(row, f2(float64(syncWall)/float64(asyncWall))+"x")
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"paper (§6.1/§6.2 + HotStorage'19): monitoring/logging is the dominant cause of the 2-5x GDPR slowdown",
		"audit trail in strict durable mode (fsync per commit); sync = inline encode+write+fsync per op behind one lock (the old audit.Log), batched = group-committed with caller wait, async = staged with bounded-queue backpressure",
		"the no-log column keeps engine-side logging off too (no AOF read-logging / statement log), so it bounds the whole logging feature's cost, not just the trail's",
	)
	return res, nil
}

// auditLeg loads records and runs the customer workload against one
// engine model with the given audit pipeline, returning the workload
// completion time.
func auditLeg(engine string, logging bool, policy audit.Pipeline, records, ops, threads int) (time.Duration, error) {
	dir, err := os.MkdirTemp("", "gdprbench-f12-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	comp := core.Compliance{AccessControl: true, Strict: true, Logging: logging}
	var db core.DB
	switch engine {
	case "redis":
		db, err = core.OpenRedis(core.RedisConfig{
			Dir: dir, Compliance: comp, DisableBackgroundExpiry: true,
			AuditPolicy: policy, AuditSyncAlways: true,
		})
	case "postgres":
		db, err = core.OpenPostgres(core.PostgresConfig{
			Dir: dir, Compliance: comp, DisableTTLDaemon: true,
			AuditPolicy: policy, AuditSyncAlways: true,
		})
	default:
		return 0, fmt.Errorf("experiments: unknown engine %q", engine)
	}
	if err != nil {
		return 0, err
	}
	defer db.Close()
	cfg := core.Config{Records: records, Operations: ops, Threads: threads, Seed: 1}
	ds, _, err := core.Load(db, cfg, nil)
	if err != nil {
		return 0, err
	}
	run, err := core.Run(db, ds, core.Customer, nil)
	if err != nil {
		return 0, err
	}
	if run.TotalErrors() > 0 {
		return 0, fmt.Errorf("customer/%s/%v: %d operation errors", engine, policy, run.TotalErrors())
	}
	return run.WallTime(), nil
}

package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/gdpr"
)

func init() {
	register("T1", runT1)
	register("T2a", runT2a)
}

// runT1 reproduces Table 1: GDPR articles mapped to database attributes
// and actions.
func runT1(Scale) (Result, error) {
	res := Result{
		ID:     "T1",
		Title:  "GDPR articles -> database attributes and actions (Table 1)",
		Header: []string{"Article", "Clause", "Attributes", "Actions"},
	}
	for _, a := range gdpr.Articles {
		attrs := make([]string, len(a.Attributes))
		for i, at := range a.Attributes {
			attrs[i] = string(at)
		}
		acts := make([]string, len(a.Actions))
		for i, ac := range a.Actions {
			acts[i] = string(ac)
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("G %d", a.Number), a.Clause,
			strings.Join(attrs, ","), strings.Join(acts, ","),
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("capability checklist: %v", gdpr.ActionsRequired()))
	return res, nil
}

// runT2a reproduces Table 2a: the four GDPRbench workloads with their
// query mixes, default weights and distributions.
func runT2a(Scale) (Result, error) {
	res := Result{
		ID:     "T2a",
		Title:  "GDPRbench core workloads (Table 2a)",
		Header: []string{"Workload", "Query", "Weight", "Distribution"},
	}
	ws := core.DefaultWorkloads()
	for _, name := range core.WorkloadNames() {
		m := ws[name]
		for i, q := range m.Queries {
			d := m.Dist
			if m.SecondaryDist != m.Dist && i > 0 {
				d = m.SecondaryDist
			}
			res.Rows = append(res.Rows, []string{
				string(name), string(q), f1(m.Weights[i]) + "%", d.String(),
			})
		}
	}
	return res, nil
}

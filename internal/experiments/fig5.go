package experiments

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/ycsb"
)

func init() {
	register("F5a", func(s Scale) (Result, error) { return runFig5("redis", false, s) })
	register("F5b", func(s Scale) (Result, error) { return runFig5("postgres", false, s) })
	register("F5c", func(s Scale) (Result, error) { return runFig5("postgres", true, s) })
	register("T3", runTable3)
	register("F6", runFig6)
}

func gdprConfig(scale Scale) core.Config {
	cfg := core.Config{Records: 5_000, Operations: 500, Threads: 8, Seed: 1}
	if scale == Paper {
		cfg = core.Config{Records: 100_000, Operations: 10_000, Threads: 8, Seed: 1}
	}
	return cfg.WithDefaults()
}

// openClient builds a fully-compliant client of the requested engine in a
// fresh temp dir (removed by the returned cleanup).
func openClient(engine string, indexed bool) (core.DB, func(), error) {
	dir, err := os.MkdirTemp("", "gdprbench-exp-*")
	if err != nil {
		return nil, nil, err
	}
	comp := core.Full()
	comp.MetadataIndexing = indexed
	var db core.DB
	switch engine {
	case "redis":
		db, err = core.OpenRedis(core.RedisConfig{Dir: dir, Compliance: comp})
	case "postgres":
		db, err = core.OpenPostgres(core.PostgresConfig{Dir: dir, Compliance: comp})
	default:
		err = fmt.Errorf("experiments: unknown engine %q", engine)
	}
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	cleanup := func() {
		db.Close()
		os.RemoveAll(dir)
	}
	return db, cleanup, nil
}

// gdprRun executes the requested workloads on a fully-compliant engine,
// each against a freshly loaded database (as GDPRbench does — the
// controller workload's bulk deletions must not starve the later
// workloads, and audit trails must not accumulate across runs), and
// returns per-workload stats plus the post-load space usage.
func gdprRun(engine string, indexed bool, cfg core.Config, names []core.WorkloadName) (map[core.WorkloadName]*stats.Run, core.SpaceUsage, error) {
	out := make(map[core.WorkloadName]*stats.Run, len(names))
	var space core.SpaceUsage
	for _, name := range names {
		db, cleanup, err := openClient(engine, indexed)
		if err != nil {
			return nil, space, err
		}
		ds, _, err := core.Load(db, cfg, nil)
		if err != nil {
			cleanup()
			return nil, space, err
		}
		if space.TotalBytes == 0 {
			space, err = db.SpaceUsage()
			if err != nil {
				cleanup()
				return nil, space, err
			}
		}
		run, err := core.Run(db, ds, name, nil)
		cleanup()
		if err != nil {
			return nil, space, fmt.Errorf("%s: %w", name, err)
		}
		if run.TotalErrors() > 0 {
			return nil, space, fmt.Errorf("%s: %d operation errors", name, run.TotalErrors())
		}
		out[name] = run
	}
	return out, space, nil
}

// runFig5 reproduces Figures 5a/5b/5c: GDPRbench workload completion
// times on the compliant engines (Redis; PostgreSQL; PostgreSQL with
// metadata indices).
func runFig5(engine string, indexed bool, scale Scale) (Result, error) {
	id, title := "F5a", "compliant Redis"
	if engine == "postgres" {
		if indexed {
			id, title = "F5c", "compliant PostgreSQL + metadata indices"
		} else {
			id, title = "F5b", "compliant PostgreSQL"
		}
	}
	cfg := gdprConfig(scale)
	res := Result{
		ID:     id,
		Title:  fmt.Sprintf("GDPRbench completion time on %s (Figure %s)", title, id[1:]),
		Header: []string{"Workload", "Completion time", "Throughput ops/s"},
	}
	runs, _, err := gdprRun(engine, indexed, cfg, core.WorkloadNames())
	if err != nil {
		return res, err
	}
	for _, name := range core.WorkloadNames() {
		run := runs[name]
		res.Rows = append(res.Rows, []string{
			string(name), run.WallTime().Round(time.Millisecond).String(), f1(run.Throughput()),
		})
	}
	switch id {
	case "F5a":
		res.Notes = append(res.Notes, "paper: processor fastest; controller slowest; customer/regulator 2-4x processor")
	case "F5b":
		res.Notes = append(res.Notes, "paper: an order of magnitude faster than Redis on every workload")
	case "F5c":
		res.Notes = append(res.Notes, "paper: metadata indices improve all workloads, controller the most")
	}
	return res, nil
}

// runTable3 reproduces Table 3: the space-overhead metric for the default
// record configuration (paper: 3.5x for both engines, 5.95x for
// PostgreSQL once all metadata fields are indexed).
func runTable3(scale Scale) (Result, error) {
	cfg := gdprConfig(scale)
	res := Result{
		ID:     "T3",
		Title:  "Storage space overhead (Table 3)",
		Header: []string{"System", "Personal data bytes", "Total DB bytes", "Space factor"},
	}
	configs := []struct {
		name    string
		engine  string
		indexed bool
	}{
		{"Redis", "redis", false},
		{"PostgreSQL", "postgres", false},
		{"PostgreSQL w/ metadata indices", "postgres", true},
		// Beyond the paper: the kvstore's metadata-index layer gives the
		// Redis model the same indexing space overhead to report.
		{"Redis w/ metadata indices", "redis", true},
	}
	for _, c := range configs {
		db, cleanup, err := openClient(c.engine, c.indexed)
		if err != nil {
			return res, err
		}
		_, _, err = core.Load(db, cfg, nil)
		if err != nil {
			cleanup()
			return res, err
		}
		space, err := db.SpaceUsage()
		cleanup()
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, []string{
			c.name,
			fmt.Sprintf("%d", space.PersonalBytes),
			fmt.Sprintf("%d", space.TotalBytes),
			f2(space.Factor()) + "x",
		})
	}
	res.Notes = append(res.Notes,
		"paper: 3.5x for both engines in the default configuration; 5.95x for PostgreSQL with all metadata fields indexed",
		"the indexed-Redis row is beyond the paper (its retrofit left Redis unindexed)")
	return res, nil
}

// runFig6 reproduces Figure 6: representative throughput of both engines
// on YCSB versus GDPRbench under identical (fully compliant) conditions.
// The paper reports a 2-4 order-of-magnitude gap.
func runFig6(scale Scale) (Result, error) {
	ycsbCfg := fig6YCSBConfig(scale)
	gdprCfg := gdprConfig(scale)
	res := Result{
		ID:     "F6",
		Title:  "YCSB vs GDPRbench throughput on compliant engines (Figure 6)",
		Header: []string{"System", "YCSB ops/s", "GDPRbench ops/s", "Gap"},
	}
	combined := featureSet{name: "combined", encrypt: true, ttl: true, log: true}
	for _, engine := range []string{"redis", "postgres"} {
		y, err := measureYCSB(engine, combined, "A", ycsbCfg)
		if err != nil {
			return res, err
		}
		runs, _, err := gdprRun(engine, false, gdprCfg, core.WorkloadNames())
		if err != nil {
			return res, err
		}
		var ops int64
		var wall time.Duration
		for _, run := range runs {
			ops += run.TotalOps()
			wall += run.WallTime()
		}
		g := float64(ops) / wall.Seconds()
		name := "Redis"
		if engine == "postgres" {
			name = "PostgreSQL"
		}
		res.Rows = append(res.Rows, []string{name, f0(y), f1(g), fmt.Sprintf("%.0fx", y/g)})
	}
	res.Notes = append(res.Notes,
		"paper: YCSB ~10000 ops/s on both; GDPR workloads 2-3 (PostgreSQL) to 4 (Redis) orders of magnitude slower")
	return res, nil
}

func fig6YCSBConfig(scale Scale) ycsb.Config {
	if scale == Paper {
		return ycsb.Config{Records: 100_000, Operations: 500_000_000, MaxTime: 2 * time.Second, Threads: 16, Seed: 1}
	}
	return ycsb.Config{Records: 2_000, Operations: 50_000_000, MaxTime: 250 * time.Millisecond, Threads: 8, Seed: 1}
}

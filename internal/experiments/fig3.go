package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/clock"
	"repro/internal/kvstore"
	"repro/internal/relstore"
)

func init() {
	register("F3a", runFig3a)
	register("F3b", runFig3b)
}

// runFig3a reproduces Figure 3a: the delay between keys expiring and the
// Redis-model engine actually erasing them, under the native lazy
// probabilistic algorithm, as the database grows. The paper populates
// keys so that 20% expire after 5 minutes and 80% after 5 days, then
// measures how long past the 5-minute mark full erasure takes (~3 hours
// at 128k keys). The strict retrofit erases in sub-second time.
//
// The expiry process is driven by a simulated clock, so hours of virtual
// time cost milliseconds of real time and the result is deterministic.
func runFig3a(scale Scale) (Result, error) {
	// 4x size steps keep the growth visible above the sampler's noise.
	sizes := []int{1_000, 4_000, 16_000}
	if scale == Paper {
		sizes = []int{1_000, 2_000, 4_000, 8_000, 16_000, 32_000, 64_000, 128_000}
	}
	res := Result{
		ID:     "F3a",
		Title:  "Redis TTL erasure delay vs DB size (Figure 3a)",
		Header: []string{"Total keys", "Lazy erase time", "Strict erase time"},
	}
	const (
		short      = 5 * time.Minute
		long       = 5 * 24 * time.Hour
		shortFrac  = 0.20
		maxVirtual = 100 * time.Hour
	)
	for _, n := range sizes {
		lazy, err := measureErasure(n, kvstore.ExpiryLazy, short, long, shortFrac, maxVirtual)
		if err != nil {
			return res, err
		}
		strict, err := measureErasure(n, kvstore.ExpiryStrict, short, long, shortFrac, maxVirtual)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", n), lazy.String(), strict.String(),
		})
	}
	res.Notes = append(res.Notes,
		"paper: lazy erasure ~3h at 128k keys, growing superlinearly; strict mod sub-second up to 1M keys",
		"virtual time on a simulated clock; one expiry cycle per 100ms as in Redis")
	return res, nil
}

// measureErasure populates a store and advances virtual time in expiry
// cycles until every due key is erased, returning the virtual delay past
// the short-TTL deadline.
func measureErasure(n int, mode kvstore.ExpiryMode, short, long time.Duration, shortFrac float64, maxVirtual time.Duration) (time.Duration, error) {
	sim := clock.NewSim(time.Time{})
	s, err := kvstore.Open(kvstore.Config{Clock: sim, ExpiryMode: mode})
	if err != nil {
		return 0, err
	}
	defer s.Close()
	now := sim.Now()
	nShort := int(float64(n) * shortFrac)
	for i := 0; i < n; i++ {
		exp := now.Add(long)
		if i < nShort {
			exp = now.Add(short)
		}
		if err := s.SetWithExpiry(fmt.Sprintf("key-%d", i), "payload", exp); err != nil {
			return 0, err
		}
	}
	sim.Advance(short)
	start := sim.Now()
	// Only the short-TTL keys expire inside the measurement window, so
	// full erasure is exactly when the key count drops to n - nShort —
	// an O(1) check per cycle, keeping paper-scale sizes tractable.
	target := n - nShort
	for sim.Since(start) < maxVirtual {
		sim.Advance(kvstore.ExpireCyclePeriod)
		s.CycleOnce()
		if s.DBSize() <= target {
			return sim.Since(start), nil
		}
	}
	return sim.Since(start), fmt.Errorf("experiments: erasure did not complete within %v virtual", maxVirtual)
}

// runFig3b reproduces Figure 3b: pgbench-style update throughput on the
// PostgreSQL-model engine as secondary indices are added to the table
// (paper: two indices cut throughput to ~33% of the original).
func runFig3b(scale Scale) (Result, error) {
	accounts, txns := 5_000, 50_000
	if scale == Paper {
		accounts, txns = 100_000, 500_000
	}
	res := Result{
		ID:     "F3b",
		Title:  "PostgreSQL update throughput vs secondary indices (Figure 3b)",
		Header: []string{"Indices", "TPS", "Relative"},
	}
	indexSets := [][]string{nil, {"purpose"}, {"purpose", "usr"}}
	var base float64
	for _, cols := range indexSets {
		// Median of three fresh runs damps scheduler noise.
		var samples []float64
		for rep := 0; rep < 3; rep++ {
			db, err := relstore.Open(relstore.Config{})
			if err != nil {
				return res, err
			}
			r, err := relstore.RunPgbench(db, relstore.PgbenchConfig{
				Accounts: accounts, Transactions: txns, IndexColumns: cols, Seed: int64(rep + 1),
			})
			db.Close()
			if err != nil {
				return res, err
			}
			samples = append(samples, r.TPS)
		}
		sort.Float64s(samples)
		tps := samples[1]
		if base == 0 {
			base = tps
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", len(cols)), f0(tps), pct(100 * tps / base),
		})
	}
	res.Notes = append(res.Notes,
		"paper: 2 indices (purpose, user-id) reduce throughput to ~33% of the 0-index baseline",
		"updates rewrite all index entries (MVCC non-HOT behavior), which is the measured amplification")
	return res, nil
}

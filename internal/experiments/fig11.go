package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/remote"
	"repro/internal/server"
)

func init() {
	register("F11", runNetworkOverhead)
}

// runNetworkOverhead is the F11 experiment: workload completion time of
// the same GDPR customer workload against an embedded engine and
// against the identical engine served over localhost TCP through the
// network service layer. The paper benchmarks network-attached Redis
// and PostgreSQL and attributes part of GDPR query cost to
// client/server round trips; this experiment isolates that service
// boundary — same engine, same middleware, same workload, the only
// delta being the wire protocol, framing and socket hops.
func runNetworkOverhead(scale Scale) (Result, error) {
	records, ops, threads := 1_200, 300, 4
	if scale == Paper {
		records, ops, threads = 20_000, 5_000, 8
	}
	res := Result{
		ID:     "F11",
		Title:  "Network service overhead: embedded vs localhost TCP (F11)",
		Header: []string{"Engine", "Embedded", "Localhost TCP", "TCP/embedded"},
	}
	for _, engine := range []string{"redis", "postgres"} {
		emb, err := networkLeg(engine, false, records, ops, threads)
		if err != nil {
			return res, err
		}
		tcp, err := networkLeg(engine, true, records, ops, threads)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, []string{
			engine,
			emb.Round(time.Microsecond).String(),
			tcp.Round(time.Microsecond).String(),
			f2(float64(tcp)/float64(emb)) + "x",
		})
	}
	res.Notes = append(res.Notes,
		"paper: the evaluation runs Redis and PostgreSQL network-attached; client/server round trips are part of every GDPR query's cost",
		"the TCP legs run the full stack over internal/server + internal/remote: pipelined wire protocol, role-bound sessions, compliance server-side",
	)
	return res, nil
}

// networkLeg loads records and runs the customer workload against one
// engine model, embedded or via a localhost TCP server, returning the
// workload completion time.
func networkLeg(engine string, overTCP bool, records, ops, threads int) (time.Duration, error) {
	host, err := openBare(engine, core.Compliance{AccessControl: true, Strict: true})
	if err != nil {
		return 0, err
	}
	defer host.Close()

	db := host
	if overTCP {
		srv := server.New(host, server.Config{})
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			return 0, err
		}
		defer srv.Close()
		cli, err := remote.Dial(remote.Config{Addr: addr})
		if err != nil {
			return 0, err
		}
		defer cli.Close()
		db = cli
	}

	cfg := core.Config{Records: records, Operations: ops, Threads: threads, Seed: 1}
	ds, _, err := core.Load(db, cfg, nil)
	if err != nil {
		return 0, err
	}
	run, err := core.Run(db, ds, core.Customer, nil)
	if err != nil {
		return 0, err
	}
	return run.WallTime(), nil
}

package experiments

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/shard"
)

func init() {
	register("F9", runShardScale)
}

// runShardScale is the F9 scale experiment, going beyond the paper: §6.3
// shows GDPR metadata queries degrading linearly with personal-data
// volume and stops there. F9 measures the axis the paper punts on —
// completion time of the scan-heavy customer workload as the engine is
// hash-partitioned into more shards behind the same compliance
// middleware. Attribute queries scatter-gather, so each shard scans 1/N
// of the records in parallel; with enough cores the Redis model's O(n)
// scans should fall toward 1/N while the fixed per-query work bounds the
// gain (Amdahl).
func runShardScale(scale Scale) (Result, error) {
	shardCounts := []int{1, 2, 4, 8}
	cfg := core.Config{Records: 4_000, Operations: 400, Threads: 8, Seed: 1}
	if scale == Paper {
		cfg = core.Config{Records: 100_000, Operations: 10_000, Threads: 8, Seed: 1}
	}
	cfg = cfg.WithDefaults()
	res := Result{
		ID:     "F9",
		Title:  "Sharded engines: GDPRbench customer completion time vs shard count (F9)",
		Header: []string{"Shards", "Redis model", "PostgreSQL model"},
	}
	for _, n := range shardCounts {
		row := []string{fmt.Sprintf("%d", n)}
		for _, engine := range []string{"redis", "postgres"} {
			// Median of three fresh loads+runs damps warmup noise, like
			// the F7/F8 scale experiments.
			var walls []time.Duration
			for i := 0; i < 3; i++ {
				wall, err := shardedCustomerRun(engine, n, cfg)
				if err != nil {
					return res, err
				}
				walls = append(walls, wall)
			}
			sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
			row = append(row, walls[1].Round(time.Millisecond).String())
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"beyond the paper: §6.3 measures degradation with volume; F9 measures recovery with shards",
		fmt.Sprintf("scatter-gather scan speedup is hardware-bound: GOMAXPROCS=%d on this run", runtime.GOMAXPROCS(0)))
	return res, nil
}

// shardedCustomerRun loads a fresh sharded engine and times the customer
// workload (the paper's representative metadata-heavy role).
func shardedCustomerRun(engine string, shards int, cfg core.Config) (time.Duration, error) {
	dir, err := os.MkdirTemp("", "gdprbench-f9-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	db, err := shard.Open(engine, shards, dir, core.Full(), nil, false, audit.PipeBatched, 0, core.Tuning{})
	if err != nil {
		return 0, err
	}
	defer db.Close()
	ds, _, err := core.Load(db, cfg, nil)
	if err != nil {
		return 0, err
	}
	run, err := core.Run(db, ds, core.Customer, nil)
	if err != nil {
		return 0, err
	}
	if run.TotalErrors() > 0 {
		return 0, fmt.Errorf("customer x%d shards: %d operation errors", shards, run.TotalErrors())
	}
	return run.WallTime(), nil
}

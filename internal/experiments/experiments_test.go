package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/kvstore"
)

func TestIDsCoverEveryPaperArtifact(t *testing.T) {
	want := []string{"T1", "T2a", "T3", "F3a", "F3b", "F4a", "F4b",
		"F5a", "F5b", "F5c", "F6", "F7a", "F7b", "F8a", "F8b", "F9", "F10", "F11", "F12", "F13"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	set := map[string]bool{}
	for _, id := range got {
		set[id] = true
	}
	for _, id := range want {
		if !set[id] {
			t.Fatalf("missing artifact %s in %v", id, got)
		}
	}
	// Tables sort before figures.
	if got[0] != "T1" || got[1] != "T2a" || got[2] != "T3" {
		t.Fatalf("ordering: %v", got)
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("F99", Small); err == nil {
		t.Fatal("unknown id should fail")
	}
}

func TestT1MatchesPaperTable(t *testing.T) {
	res, err := Run("T1", Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("T1 rows = %d, want 12", len(res.Rows))
	}
	if res.Rows[0][0] != "G 5" || res.Rows[11][0] != "G 33" {
		t.Fatalf("T1 articles: first=%s last=%s", res.Rows[0][0], res.Rows[11][0])
	}
	s := res.String()
	for _, want := range []string{"Right to be forgotten", "timely-deletion", "encryption"} {
		if !strings.Contains(s, want) {
			t.Fatalf("T1 missing %q", want)
		}
	}
}

func TestT2aHasAllWorkloadRows(t *testing.T) {
	res, err := Run("T2a", Small)
	if err != nil {
		t.Fatal(err)
	}
	// 7 controller + 5 customer + 4 processor + 3 regulator = 19 rows.
	if len(res.Rows) != 19 {
		t.Fatalf("T2a rows = %d", len(res.Rows))
	}
	counts := map[string]int{}
	for _, row := range res.Rows {
		counts[row[0]]++
	}
	if counts["controller"] != 7 || counts["customer"] != 5 || counts["processor"] != 4 || counts["regulator"] != 3 {
		t.Fatalf("T2a row counts = %v", counts)
	}
}

// TestFig3aShape checks the headline claim: lazy erasure delay grows with
// DB size while the strict retrofit stays at one cycle period.
func TestFig3aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation heavy")
	}
	res, err := Run("F3a", Small)
	if err != nil {
		t.Fatal(err)
	}
	var lazies []time.Duration
	for i, row := range res.Rows {
		lazy, err := time.ParseDuration(row[1])
		if err != nil {
			t.Fatal(err)
		}
		strict, err := time.ParseDuration(row[2])
		if err != nil {
			t.Fatal(err)
		}
		lazies = append(lazies, lazy)
		if strict > 2*kvstore.ExpireCyclePeriod {
			t.Fatalf("row %d: strict delay %v exceeds a cycle period", i, strict)
		}
	}
	first, last := lazies[0], lazies[len(lazies)-1]
	// 16x the keys must cost well over 3x the erasure delay (the curve is
	// superlinear in the paper; the sampler is stochastic, so no strict
	// per-step monotonicity is asserted).
	if float64(last) < 3*float64(first) {
		t.Fatalf("lazy delay grew too little: %v -> %v", first, last)
	}
	if last < time.Minute {
		t.Fatalf("largest lazy delay %v, want minutes", last)
	}
}

// TestFig3bShape checks the headline claim: two secondary indices cut
// update throughput to roughly a third.
func TestFig3bShape(t *testing.T) {
	res, err := Run("F3b", Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	rel := func(i int) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(res.Rows[i][2], "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if rel(0) != 100 {
		t.Fatalf("baseline relative = %v", rel(0))
	}
	if !(rel(1) < 90 && rel(2) < rel(1)) {
		t.Fatalf("indices did not degrade monotonically: %v, %v", rel(1), rel(2))
	}
	// Paper: ~33%. Allow a generous band around it.
	if rel(2) < 10 || rel(2) > 70 {
		t.Fatalf("2-index relative throughput %v%%, want within [15, 70]", rel(2))
	}
}

// TestFig7bShape checks that the Redis GDPR customer workload's
// completion time grows with the personal-data volume.
func TestFig7bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing heavy")
	}
	res, err := Run("F7b", Small)
	if err != nil {
		t.Fatal(err)
	}
	first, err := time.ParseDuration(res.Rows[0][1])
	if err != nil {
		t.Fatal(err)
	}
	last, err := time.ParseDuration(res.Rows[len(res.Rows)-1][1])
	if err != nil {
		t.Fatal(err)
	}
	// 4x data should be at least ~1.5x time (paper: linear).
	if float64(last) < 1.5*float64(first) {
		t.Fatalf("completion did not grow with volume: %v -> %v", first, last)
	}
}

// TestTable3Shape checks that indexing inflates the space factor and that
// all factors exceed 1 (metadata dominates personal data).
func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("load heavy")
	}
	res, err := Run("T3", Small)
	if err != nil {
		t.Fatal(err)
	}
	factor := func(i int) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(res.Rows[i][3], "x"), 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	redis, pg, pgIdx, redisIdx := factor(0), factor(1), factor(2), factor(3)
	if redis <= 1 || pg <= 1 {
		t.Fatalf("space factors must exceed 1: redis=%v pg=%v", redis, pg)
	}
	if pgIdx <= pg {
		t.Fatalf("indexes must inflate the factor: %v vs %v", pgIdx, pg)
	}
	if redisIdx <= redis {
		t.Fatalf("the kvstore index layer must inflate the factor: %v vs %v", redisIdx, redis)
	}
}

// TestFig10Shape checks the metadata-indexing headline: at the largest
// record count, indexed attribute reads complete well ahead of the scan
// baseline on both engines (the expected gap is orders of magnitude, so
// a 1.5x bar keeps the test robust on noisy runners).
func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing heavy")
	}
	res, err := Run("F10", Small)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Rows[len(res.Rows)-1]
	dur := func(i int) time.Duration {
		d, err := time.ParseDuration(last[i])
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	redisScan, redisIdx := dur(1), dur(2)
	pgScan, pgIdx := dur(3), dur(4)
	if float64(redisScan) < 1.5*float64(redisIdx) {
		t.Fatalf("redis: indexed reads (%v) did not beat the scan baseline (%v)", redisIdx, redisScan)
	}
	if float64(pgScan) < 1.5*float64(pgIdx) {
		t.Fatalf("postgres: indexed reads (%v) did not beat the scan baseline (%v)", pgIdx, pgScan)
	}
}

// TestFig11Shape checks the network-overhead experiment's sanity: both
// legs complete, and serving the workload over localhost TCP does not
// somehow beat the in-process calls it wraps (a generous 0.8x floor
// keeps the test robust on noisy runners).
func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing heavy")
	}
	res, err := Run("F11", Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		emb, err := time.ParseDuration(row[1])
		if err != nil {
			t.Fatal(err)
		}
		tcp, err := time.ParseDuration(row[2])
		if err != nil {
			t.Fatal(err)
		}
		if emb <= 0 || tcp <= 0 {
			t.Fatalf("%s: non-positive completion times %v / %v", row[0], emb, tcp)
		}
		if float64(tcp) < 0.8*float64(emb) {
			t.Fatalf("%s: TCP leg (%v) implausibly faster than embedded (%v)", row[0], tcp, emb)
		}
	}
}

// TestFig12Shape checks the audit-pipeline experiment's sanity: every
// leg completes, the sync (inline, durable) leg pays the most, and the
// async pipeline is not slower than sync (the tentpole's whole point;
// a generous 0.9x floor keeps the test robust on noisy runners).
func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing heavy")
	}
	res, err := Run("F12", Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		sync, err := time.ParseDuration(row[2])
		if err != nil {
			t.Fatal(err)
		}
		async, err := time.ParseDuration(row[4])
		if err != nil {
			t.Fatal(err)
		}
		if sync <= 0 || async <= 0 {
			t.Fatalf("%s: non-positive completion times %v / %v", row[0], sync, async)
		}
		if float64(sync) < 0.9*float64(async) {
			t.Fatalf("%s: async audit (%v) slower than the inline sync baseline (%v)", row[0], async, sync)
		}
	}
}

// TestFig13Shape checks the streaming-export experiment's sanity: all
// three legs complete, the export legs actually finish exports, and the
// streamed leg's mean export time does not regress past the
// materialized ablation by more than noise (the tentpole claim is that
// it is faster *and* bounded-memory; the shape test only pins "not
// dramatically slower" to stay robust on loaded runners).
func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing heavy")
	}
	res, err := Run("F13", Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	legs := map[string][]string{}
	for _, row := range res.Rows {
		legs[row[0]] = row
	}
	if legs["no-export"][1] != "0" {
		t.Fatalf("no-export leg reports %s exports", legs["no-export"][1])
	}
	for _, leg := range []string{"streamed", "materialized"} {
		row := legs[leg]
		if row == nil {
			t.Fatalf("missing leg %q in %v", leg, res.Rows)
		}
		if row[1] == "0" {
			t.Fatalf("%s leg completed zero exports — window too short", leg)
		}
		if _, err := time.ParseDuration(row[2]); err != nil {
			t.Fatalf("%s export mean %q: %v", leg, row[2], err)
		}
		if _, err := time.ParseDuration(row[4]); err != nil {
			t.Fatalf("%s GET p99 %q: %v", leg, row[4], err)
		}
	}
}

func TestResultStringAligned(t *testing.T) {
	r := Result{
		ID: "X", Title: "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	s := r.String()
	if !strings.Contains(s, "== X: demo ==") || !strings.Contains(s, "note: a note") {
		t.Fatalf("render:\n%s", s)
	}
	lines := strings.Split(s, "\n")
	if len(lines[1]) != len(lines[2]) {
		t.Fatalf("columns not aligned:\n%s", s)
	}
}

func TestMeasureErasureErrorsWhenTooSlow(t *testing.T) {
	// A lazy store with many keys and a tiny virtual budget must report
	// non-completion.
	_, err := measureErasure(5000, kvstore.ExpiryLazy, time.Minute, time.Hour, 0.5, 2*time.Second)
	if err == nil {
		t.Fatal("expected a did-not-complete error")
	}
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (§5 microbenchmarks, §6.1 feature overheads, §6.2 GDPR
// workloads, §6.3 scale) plus the analysis tables (Table 1, Table 2a).
// Each experiment is a pure function returning a Result — the same
// rows/series the paper reports — so the CLI, the benchmark harness and
// tests all share one implementation.
//
// Absolute numbers differ from the paper (the substrate is an in-process
// engine, not the authors' testbed); the shapes the paper argues from are
// asserted in experiments_test.go and recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Scale selects experiment sizing.
type Scale string

// Scales.
const (
	// Small finishes each experiment in seconds; the default.
	Small Scale = "small"
	// Paper approaches the paper's dataset sizes; minutes per experiment.
	Paper Scale = "paper"
)

// Result is one regenerated artifact: an ID like "F3a" or "T3", the rows
// of the corresponding figure/table, and free-form notes (paper-reported
// values, shape checks).
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the result as an aligned text table.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner is an experiment entry point.
type Runner func(scale Scale) (Result, error)

// registry maps experiment IDs to runners; populated in init() by the
// per-figure files.
var registry = map[string]Runner{}

// titles preserves presentation order.
var order []string

func register(id string, fn Runner) {
	registry[id] = fn
	order = append(order, id)
}

// IDs lists the registered experiment IDs in presentation order.
func IDs() []string {
	out := append([]string(nil), order...)
	sort.Slice(out, func(i, j int) bool { return artifactRank(out[i]) < artifactRank(out[j]) })
	return out
}

// artifactRank orders T1, T2a first, then figures numerically (the
// figure number is zero-padded so F10 sorts after F9).
func artifactRank(id string) string {
	switch {
	case strings.HasPrefix(id, "T"):
		return "0" + id
	default:
		rest := id[1:]
		i := 0
		for i < len(rest) && rest[i] >= '0' && rest[i] <= '9' {
			i++
		}
		return fmt.Sprintf("1F%03s%s", rest[:i], rest[i:])
	}
}

// Run executes the experiment with the given ID.
func Run(id string, scale Scale) (Result, error) {
	fn, ok := registry[id]
	if !ok {
		return Result{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return fn(scale)
}

// RunAll executes every experiment in order.
func RunAll(scale Scale) ([]Result, error) {
	var out []Result
	for _, id := range IDs() {
		r, err := Run(id, scale)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f0(v float64) string  { return fmt.Sprintf("%.0f", v) }
func pct(v float64) string { return fmt.Sprintf("%.0f%%", v) }

package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/audit"
	"repro/internal/kvstore"
	"repro/internal/relstore"
	"repro/internal/securefs"
	"repro/internal/transit"
	"repro/internal/wal"
	"repro/internal/ycsb"
)

func init() {
	register("F4a", func(s Scale) (Result, error) { return runFig4("redis", s) })
	register("F4b", func(s Scale) (Result, error) { return runFig4("postgres", s) })
}

// featureSet is one bar group of Figure 4: which GDPR security features
// are enabled.
type featureSet struct {
	name    string
	encrypt bool // at-rest (persistence) + in-transit record layer
	ttl     bool // timely deletion machinery active
	log     bool // log all operations including reads
}

func fig4Features() []featureSet {
	return []featureSet{
		{name: "baseline"},
		{name: "encrypt", encrypt: true},
		{name: "ttl", ttl: true},
		{name: "log", log: true},
		{name: "combined", encrypt: true, ttl: true, log: true},
	}
}

// runFig4 reproduces Figures 4a/4b: YCSB workloads A-F on one engine,
// normalized against the engine's no-security baseline, for each feature
// set. The paper reports Redis dropping to ~20% (5x slowdown) and
// PostgreSQL to ~50-60% (~2x) with all features combined, with logging
// the dominant cost on Redis.
func runFig4(engine string, scale Scale) (Result, error) {
	// Fixed-duration windows: every configuration is measured for the
	// same wall time regardless of its speed, so relative throughput is
	// comparable.
	cfg := ycsb.Config{Records: 5_000, Operations: 50_000_000, MaxTime: 250 * time.Millisecond, Threads: 8, Seed: 1}
	if scale == Paper {
		cfg = ycsb.Config{Records: 200_000, Operations: 500_000_000, MaxTime: 2 * time.Second, Threads: 16, Seed: 1}
	}
	title := "Redis"
	id := "F4a"
	if engine == "postgres" {
		title = "PostgreSQL"
		id = "F4b"
	}
	res := Result{
		ID:     id,
		Title:  fmt.Sprintf("%s YCSB throughput under GDPR features, %% of baseline (Figure %s)", title, id[1:]),
		Header: []string{"Workload", "Baseline ops/s", "Encrypt", "TTL", "Log", "Combined"},
	}
	features := fig4Features()
	// tput[featureIdx][letter]
	tput := make([]map[string]float64, len(features))
	for fi, f := range features {
		tput[fi] = map[string]float64{}
		for _, letter := range ycsb.WorkloadLetters() {
			v, err := measureYCSB(engine, f, letter, cfg)
			if err != nil {
				return res, fmt.Errorf("%s/%s/%s: %w", engine, f.name, letter, err)
			}
			tput[fi][letter] = v
		}
	}
	for _, letter := range ycsb.WorkloadLetters() {
		base := tput[0][letter]
		row := []string{letter, f0(base)}
		for fi := 1; fi < len(features); fi++ {
			row = append(row, pct(100*tput[fi][letter]/base))
		}
		res.Rows = append(res.Rows, row)
	}
	if engine == "redis" {
		res.Notes = append(res.Notes,
			"paper: encrypt ~-10%, ttl ~-20%, log ~-70%, combined ~-80% (5x slowdown)")
	} else {
		res.Notes = append(res.Notes,
			"paper: encrypt/ttl ~10-20% drop, log ~30-40% drop, combined ~50-60% of baseline (~2x)")
	}
	return res, nil
}

// measureYCSB loads and runs one YCSB workload on a freshly-built engine
// with the given features, returning throughput (ops/s).
func measureYCSB(engine string, f featureSet, letter string, cfg ycsb.Config) (float64, error) {
	dir, err := os.MkdirTemp("", "gdprbench-fig4-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)

	kv, cleanup, err := buildYCSBEngine(engine, f, dir)
	if err != nil {
		return 0, err
	}
	defer cleanup()

	if _, err := ycsb.Load(kv, cfg); err != nil {
		return 0, err
	}
	// Warm up caches and steady-state structures before measuring.
	warm := cfg
	warm.MaxTime = cfg.MaxTime / 3
	if _, err := ycsb.Run(kv, letter, warm); err != nil {
		return 0, err
	}
	// Median of three fixed-duration windows damps scheduler/GC noise.
	var samples []float64
	for i := 0; i < 3; i++ {
		run, err := ycsb.Run(kv, letter, cfg)
		if err != nil {
			return 0, err
		}
		if run.TotalErrors() > 0 {
			return 0, fmt.Errorf("%d operation errors", run.TotalErrors())
		}
		samples = append(samples, run.Throughput())
	}
	sort.Float64s(samples)
	return samples[1], nil
}

// buildYCSBEngine assembles one engine + binding for a feature set.
// Mapping of features to mechanisms matches §5 (see core's client docs).
func buildYCSBEngine(engine string, f featureSet, dir string) (ycsb.KV, func(), error) {
	ttlHorizon := func() (int64, bool) {
		return time.Now().Add(24 * time.Hour).UnixNano(), true
	}
	switch engine {
	case "redis":
		kvCfg := kvstore.Config{}
		if f.log {
			kvCfg.AOFPath = filepath.Join(dir, "redis.aof")
			kvCfg.AOFSync = kvstore.FsyncEverySec
			kvCfg.LogReads = true
		}
		if f.encrypt && f.log {
			kvCfg.EncryptionKey = securefs.Key("fig4/aof")
		}
		if f.ttl {
			kvCfg.ExpiryMode = kvstore.ExpiryStrict
		}
		s, err := kvstore.Open(kvCfg)
		if err != nil {
			return nil, nil, err
		}
		b := ycsb.NewKVStoreBinding(s)
		if f.ttl {
			b.SetTTLFunc(ttlHorizon)
			s.StartExpiry()
		}
		var pipe *transit.Pipe
		if f.encrypt {
			pipe, err = transit.NewPipe(securefs.Key("fig4/redis-transit"))
			if err != nil {
				s.Close()
				return nil, nil, err
			}
		}
		// Every configuration pays the wire-marshaling boundary; only the
		// encrypt feature adds the record-layer cipher.
		return ycsb.NewWireKV(b, pipe), func() { s.Close() }, nil

	case "postgres":
		relCfg := relstore.Config{
			WALPath: filepath.Join(dir, "pg.wal"),
			WALSync: wal.SyncBatched,
		}
		if f.encrypt {
			relCfg.EncryptionKey = securefs.Key("fig4/wal")
		}
		var log *audit.Log
		if f.log {
			var err error
			log, err = audit.Open(audit.Config{
				Path:   filepath.Join(dir, "pg-csvlog"),
				Policy: audit.SyncEverySec,
			})
			if err != nil {
				return nil, nil, err
			}
			relCfg.Audit = log
			relCfg.LogStatements = true
		}
		db, err := relstore.Open(relCfg)
		if err != nil {
			return nil, nil, err
		}
		b, err := ycsb.NewRelStoreBinding(db, "usertable")
		if err != nil {
			db.Close()
			return nil, nil, err
		}
		if f.ttl {
			b.SetTTLFunc(ttlHorizon)
			if err := db.StartTTLDaemon("usertable", "ttl", time.Second); err != nil {
				db.Close()
				return nil, nil, err
			}
		}
		var pipe *transit.Pipe
		if f.encrypt {
			pipe, err = transit.NewPipe(securefs.Key("fig4/pg-transit"))
			if err != nil {
				db.Close()
				return nil, nil, err
			}
		}
		cleanup := func() {
			db.Close()
			if log != nil {
				log.Close()
			}
		}
		return ycsb.NewWireKV(b, pipe), cleanup, nil

	default:
		return nil, nil, fmt.Errorf("experiments: unknown engine %q", engine)
	}
}

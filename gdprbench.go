// Package gdprbench is a from-scratch Go reproduction of "Understanding
// and Benchmarking the Impact of GDPR on Database Systems" (Shastri,
// Banakar, Wasserman, Kumar, Chidambaram — VLDB 2020): the GDPRbench
// benchmark, two embedded storage engines standing in for the paper's
// Redis and PostgreSQL, the GDPR-compliance retrofits (encryption at rest
// and in transit, audit logging, timely deletion, metadata indexing,
// metadata-based access control), and a harness that regenerates every
// table and figure of the paper's evaluation.
//
// # Quick start
//
//	db, err := gdprbench.OpenRedis(gdprbench.RedisConfig{
//		Dir:        "/tmp/gdpr",
//		Compliance: gdprbench.FullCompliance(),
//	})
//	if err != nil { ... }
//	defer db.Close()
//
//	cfg := gdprbench.Config{Records: 10_000, Operations: 1_000}
//	ds, _, err := gdprbench.Load(db, cfg)       // controller loads personal data
//	run, err := gdprbench.Run(db, ds, gdprbench.Customer) // customers exercise rights
//	fmt.Println(run.Summary())
//
// See the examples/ directory for runnable walk-throughs and DESIGN.md for
// the system inventory and per-experiment index.
package gdprbench

import (
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/acl"
	"repro/internal/audit"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gdpr"
	"repro/internal/remote"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/stats"
)

// Core types, re-exported for the public API. The paper's abstractions:
// personal-data records with seven metadata attributes (§3.1), GDPR
// queries (§3.3), role workloads (Table 2a) and compliance features (§3.2).
type (
	// DB is the GDPR query interface (§3.3) implemented by both engines.
	DB = core.DB
	// Record is one personal data item with its GDPR metadata.
	Record = gdpr.Record
	// Metadata is the seven-attribute set of §3.1.
	Metadata = gdpr.Metadata
	// Selector picks records by key or metadata attribute.
	Selector = gdpr.Selector
	// Delta is a metadata mutation.
	Delta = gdpr.Delta
	// Actor is a GDPR entity (controller, customer, processor, regulator).
	Actor = acl.Actor
	// Compliance toggles the five §3.2 feature families.
	Compliance = core.Compliance
	// Config parameterizes a benchmark run.
	Config = core.Config
	// Dataset describes the loaded records deterministically.
	Dataset = core.Dataset
	// WorkloadName names one of the four role workloads.
	WorkloadName = core.WorkloadName
	// RunStats carries a run's latencies, errors and completion time.
	RunStats = stats.Run
	// SpaceUsage is the §4.2.3 space-overhead metric input.
	SpaceUsage = core.SpaceUsage
	// CorrectnessReport is the §4.2.3 correctness metric.
	CorrectnessReport = core.CorrectnessReport
	// AuditEntry is one line of the compliance audit trail.
	AuditEntry = audit.Entry
	// RedisConfig configures the Redis-model client.
	RedisConfig = core.RedisConfig
	// PostgresConfig configures the PostgreSQL-model client.
	PostgresConfig = core.PostgresConfig
	// Tuning carries the background log-compaction knobs (AOF rewrite
	// threshold, WAL checkpoint threshold, audit retention window).
	Tuning = core.Tuning
	// ExperimentResult is one regenerated paper artifact.
	ExperimentResult = experiments.Result
	// ExperimentScale sizes experiments ("small" or "paper").
	ExperimentScale = experiments.Scale
)

// The four GDPR role workloads (Table 2a).
const (
	Controller = core.Controller
	Customer   = core.Customer
	Processor  = core.Processor
	Regulator  = core.Regulator
)

// Attribute names a GDPR metadata attribute.
type Attribute = gdpr.Attribute

// The seven metadata attributes of §3.1.
const (
	AttrPurpose   = gdpr.AttrPurpose
	AttrTTL       = gdpr.AttrTTL
	AttrUser      = gdpr.AttrUser
	AttrObjection = gdpr.AttrObjection
	AttrDecision  = gdpr.AttrDecision
	AttrSharing   = gdpr.AttrSharing
	AttrSource    = gdpr.AttrSource
)

// DeltaOp is a metadata-mutation kind.
type DeltaOp = gdpr.DeltaOp

// Metadata mutations.
const (
	DeltaSet    = gdpr.DeltaSet
	DeltaAdd    = gdpr.DeltaAdd
	DeltaRemove = gdpr.DeltaRemove
)

// Experiment scales.
const (
	ScaleSmall = experiments.Small
	ScalePaper = experiments.Paper
)

// AuditPolicy selects the audit append pipeline: inline (sync),
// group-committed with caller wait (batched), or fire-and-forget with
// bounded-queue backpressure (async). See DESIGN.md §1e.
type AuditPolicy = audit.Pipeline

// The audit pipeline spectrum (the -auditpolicy flag values).
const (
	AuditSync    = audit.PipeSync
	AuditBatched = audit.PipeBatched
	AuditAsync   = audit.PipeAsync
)

// ParseAuditPolicy maps a -auditpolicy flag value to an AuditPolicy.
func ParseAuditPolicy(s string) (AuditPolicy, error) { return audit.ParsePipeline(s) }

// DefaultAuditPolicy is the pipeline the CLIs run unless told otherwise:
// group-committed appends with caller wait — the synchronous guarantee
// at amortized cost. `-auditpolicy sync` restores the legacy inline
// baseline; `-auditpolicy async` removes the wait entirely.
const DefaultAuditPolicy = AuditBatched

// AuditStats carries the audit pipeline's counters (gdprbench -json's
// audit block). Any DB wrapped by the compliance middleware exposes it
// through AuditStatser.
type AuditStats = audit.Stats

// AuditStatser is implemented by DBs that can report their audit
// pipeline counters (every embedded middleware-wrapped DB; remote
// clients cannot, since the trail lives server-side).
type AuditStatser interface {
	AuditStats() (AuditStats, bool)
}

// RecordCursor is the chunked-iteration contract of the streaming read
// path: Next returns the next chunk of records (io.EOF after the last)
// and Close releases the cursor early. Not safe for concurrent use.
type RecordCursor = core.RecordCursor

// StreamReader is implemented by DBs that serve selector reads as
// bounded-memory chunk streams instead of one materialized slice: every
// embedded middleware-wrapped DB and the remote client. A chunk of 0
// means DefaultStreamChunk.
type StreamReader = core.StreamReader

// DefaultStreamChunk is the records-per-chunk default of the streaming
// read path.
const DefaultStreamChunk = core.DefaultStreamChunk

// DrainCursor fully consumes cur (closing it) and returns all records —
// the bridge back from the streaming API to the materialized one.
func DrainCursor(cur RecordCursor) ([]Record, error) { return core.Drain(cur) }

// FullCompliance returns the fully-compliant configuration of §6.2.
func FullCompliance() Compliance { return core.Full() }

// NoCompliance returns the no-security baseline of §6.1.
func NoCompliance() Compliance { return core.None() }

// OpenRedis opens the Redis-model engine behind the GDPRbench client stub.
func OpenRedis(cfg RedisConfig) (*core.RedisClient, error) { return core.OpenRedis(cfg) }

// OpenPostgres opens the PostgreSQL-model engine behind the client stub.
func OpenPostgres(cfg PostgresConfig) (*core.PostgresClient, error) { return core.OpenPostgres(cfg) }

// Engine is the narrow storage contract beneath the compliance
// middleware; implement it to give a new backend the full GDPR layer.
type Engine = core.Engine

// OpenShardedRedis opens shards Redis-model engines (each with its own
// AOF and expiry loop) hash-partitioned behind one compliance middleware.
// Attribute queries scatter-gather across shards in parallel.
func OpenShardedRedis(shards int, cfg RedisConfig) (DB, error) {
	return shard.OpenRedis(shards, cfg)
}

// OpenShardedPostgres opens shards PostgreSQL-model engines (each with
// its own WAL and TTL daemon) hash-partitioned behind one compliance
// middleware with a single statement log.
func OpenShardedPostgres(shards int, cfg PostgresConfig) (DB, error) {
	return shard.OpenPostgres(shards, cfg)
}

// OpenSharded dispatches on the engine model name ("redis" | "postgres").
// kvstripes selects the kvstore concurrency profile (0 = single-mutex
// baseline; ignored by the postgres model); tun arms the background
// log-compaction triggers (zero value disables them all).
func OpenSharded(engine string, shards int, dir string, comp Compliance, clk clock.Clock, disableDaemons bool, policy AuditPolicy, kvstripes int, tun Tuning) (DB, error) {
	return shard.Open(engine, shards, dir, comp, clk, disableDaemons, policy, kvstripes, tun)
}

// OpenEngine is the one engine-selection switch shared by the CLIs:
// the plain client stubs for one shard, the scatter-gather router
// behind the same compliance middleware for several. policy selects the
// audit append pipeline (DefaultAuditPolicy for the CLIs' default);
// kvstripes the kvstore concurrency profile (the -kvstripes flag); tun
// the background log-compaction triggers (the -aofrewrite-pct,
// -walcheckpoint and -auditretain flags; zero disables them all).
func OpenEngine(engine string, shards int, dir string, comp Compliance, clk clock.Clock, disableDaemons bool, policy AuditPolicy, kvstripes int, tun Tuning) (DB, error) {
	if shards > 1 {
		return OpenSharded(engine, shards, dir, comp, clk, disableDaemons, policy, kvstripes, tun)
	}
	switch engine {
	case "redis":
		return OpenRedis(RedisConfig{
			Dir: dir, Compliance: comp, Clock: clk, DisableBackgroundExpiry: disableDaemons,
			AuditPolicy: policy, KVStripes: kvstripes, Tuning: tun,
		})
	case "postgres":
		return OpenPostgres(PostgresConfig{
			Dir: dir, Compliance: comp, Clock: clk, DisableTTLDaemon: disableDaemons,
			AuditPolicy: policy, Tuning: tun,
		})
	default:
		return nil, fmt.Errorf("gdprbench: unknown engine %q", engine)
	}
}

// RemoteConfig configures OpenRemote (server address, auth token,
// connection pool size per GDPR role).
type RemoteConfig = remote.Config

// OpenRemote connects to a network GDPR datastore (cmd/gdprserver or
// gdprbench -serve) and returns a DB that executes every §3.3 query
// over the pipelined wire protocol. Compliance — access control,
// redaction, audit, strict validation — runs server-side; the client is
// just another DB, so the whole benchmark stack runs over TCP
// unchanged.
func OpenRemote(cfg RemoteConfig) (DB, error) { return remote.Dial(cfg) }

// ServerConfig configures NewServer (auth token, pipeline depth, drain
// timeout).
type ServerConfig = server.Config

// Server is the wire-protocol network front end for any DB.
type Server = server.Server

// NewServer wraps db in the network service layer: a TCP server with
// per-connection role-bound sessions, request pipelining with ordered
// responses, and graceful drain on Close. The caller still owns (and
// closes) db.
func NewServer(db DB, cfg ServerConfig) *Server { return server.New(db, cfg) }

// ServeEngine opens the selected engine (hash-sharded when shards > 1;
// on a frozen simulated clock with expiry daemons off when frozen, the
// configuration oracle-validation clients need) and serves it on addr
// until SIGINT/SIGTERM, then drains gracefully. An empty dir uses a
// temp directory removed on exit. It is the one serve bootstrap shared
// by cmd/gdprserver and gdprbench -serve, so the two binaries cannot
// drift.
func ServeEngine(addr, engine string, shards int, dir, token string, comp Compliance, frozen bool, policy AuditPolicy, kvstripes int, tun Tuning) error {
	if shards < 1 {
		return fmt.Errorf("gdprbench: shard count %d < 1", shards)
	}
	if dir == "" {
		tmp, err := os.MkdirTemp("", "gdprserver-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	var clk clock.Clock
	if frozen {
		clk = clock.NewSim(time.Time{})
	}
	db, err := OpenEngine(engine, shards, dir, comp, clk, frozen, policy, kvstripes, tun)
	if err != nil {
		return err
	}
	defer db.Close()
	srv := NewServer(db, ServerConfig{Token: token, AuditPolicy: policy.String()})
	bound, err := srv.Start(addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving engine=%s shards=%d compliance=%s auditpolicy=%s on %s\n", engine, shards, comp, policy, bound)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("draining...")
	return srv.Close()
}

// Load populates db with cfg.Records personal-data records as the
// controller and returns the dataset descriptor plus load statistics.
func Load(db DB, cfg Config) (*Dataset, *RunStats, error) { return core.Load(db, cfg, nil) }

// Run executes one Table 2a workload and returns its statistics; the
// workload completion time (§4.2.3) is RunStats.WallTime.
func Run(db DB, ds *Dataset, name WorkloadName) (*RunStats, error) {
	return core.Run(db, ds, name, nil)
}

// Validate replays a deterministic single-threaded script of the workload
// against db and an in-memory oracle, returning the §4.2.3 correctness
// metric. The db must be freshly loaded with ds on a non-advancing clock.
func Validate(db DB, ds *Dataset, name WorkloadName, aclEnabled bool) (CorrectnessReport, error) {
	return core.Validate(db, ds, name, clock.NewSim(time.Time{}), aclEnabled)
}

// Mix is a workload's query composition; build one to define custom
// workloads (§4.2.2).
type Mix = core.Mix

// Dist selects a record/attribute selection distribution (Table 2a);
// Mix.Dist drives record selection and Mix.SecondaryDist the minority
// query class's attribute values.
type Dist = core.Dist

// The Table 2a distributions.
const (
	DistUniform = core.DistUniform
	DistZipf    = core.DistZipf
)

// Workloads returns the Table 2a workload definitions.
func Workloads() map[WorkloadName]Mix { return core.DefaultWorkloads() }

// RunMix executes a custom workload mix against db.
func RunMix(db DB, ds *Dataset, mix Mix) (*RunStats, error) {
	return core.RunMix(db, ds, mix, nil)
}

// RunOpenLoop executes one Table 2a workload open-loop: operations
// arrive on a fixed schedule at rate ops/sec and latency is measured
// from each operation's scheduled arrival, so queueing behind a stall
// is counted instead of silently omitted (no coordinated omission).
func RunOpenLoop(db DB, ds *Dataset, name WorkloadName, rate float64) (*RunStats, error) {
	return core.RunOpenLoop(db, ds, name, rate, nil)
}

// RunMixOpenLoop executes a custom workload mix open-loop at a fixed
// arrival rate (ops/sec).
func RunMixOpenLoop(db DB, ds *Dataset, mix Mix, rate float64) (*RunStats, error) {
	return core.RunMixOpenLoop(db, ds, mix, rate, nil)
}

// WorkloadNames lists the four workloads in the paper's order.
func WorkloadNames() []WorkloadName { return core.WorkloadNames() }

// Selector constructors (§3.3 query families).
var (
	// ByKey selects one record by key.
	ByKey = gdpr.ByKey
	// ByUser selects all records of a data subject (G 15, G 20).
	ByUser = gdpr.ByUser
	// ByPurpose selects records collected for a purpose (G 5(1b)).
	ByPurpose = gdpr.ByPurpose
	// ByObjection selects records whose owners objected to a use (G 21).
	ByObjection = gdpr.ByObjection
	// ByNotObjecting selects records whose owners did not object (G 21.3).
	ByNotObjecting = gdpr.ByNotObjecting
	// ByDecision selects records registered for an automated decision (G 22).
	ByDecision = gdpr.ByDecision
	// ByShare selects records shared with a third party (G 13).
	ByShare = gdpr.ByShare
	// ByExpiredAt selects records whose TTL has passed (G 5(1e), G 17).
	ByExpiredAt = gdpr.ByExpiredAt
)

// Actor constructors.

// ControllerActor returns the data-controller principal.
func ControllerActor() Actor { return core.ControllerActor() }

// CustomerActor returns the data subject with the given identity.
func CustomerActor(id string) Actor { return Actor{Role: acl.Customer, ID: id} }

// ProcessorActor returns a processor acting under the given purpose.
func ProcessorActor(id, purpose string) Actor {
	return Actor{Role: acl.Processor, ID: id, Purpose: purpose}
}

// RegulatorActor returns the supervisory-authority principal.
func RegulatorActor() Actor { return core.RegulatorActor() }

// Experiments lists the regenerable paper artifacts (T1, T2a, F3a … F8b).
func Experiments() []string { return experiments.IDs() }

// RunExperiment regenerates one paper artifact.
func RunExperiment(id string, scale ExperimentScale) (ExperimentResult, error) {
	return experiments.Run(id, scale)
}

// RunAllExperiments regenerates every artifact in order.
func RunAllExperiments(scale ExperimentScale) ([]ExperimentResult, error) {
	return experiments.RunAll(scale)
}

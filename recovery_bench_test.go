package gdprbench

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/kvstore"
	"repro/internal/relstore"
	"repro/internal/wal"
)

// BenchmarkRecovery measures replay time at open for each engine's log
// in two states: raw (the full append history, dead writes included)
// and compacted (post AOF-rewrite / WAL-checkpoint). The gap is the
// recovery-time bound the background compaction work buys — run with
// -bench Recovery -benchtime 5x for stable numbers.

func copyFile(b *testing.B, src, dst string) {
	b.Helper()
	buf, err := os.ReadFile(src)
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(dst, buf, 0o644); err != nil {
		b.Fatal(err)
	}
}

// buildKvstoreLogs writes a churned AOF (every key overwritten several
// times plus deletes) and returns the raw path and a rewritten copy.
func buildKvstoreLogs(b *testing.B, dir string) (raw, compacted string) {
	b.Helper()
	raw = filepath.Join(dir, "raw.aof")
	compacted = filepath.Join(dir, "compacted.aof")
	s, err := kvstore.Open(kvstore.Config{AOFPath: raw, Striping: 4})
	if err != nil {
		b.Fatal(err)
	}
	val := strings.Repeat("v", 64)
	for round := 0; round < 8; round++ {
		for i := 0; i < 4000; i++ {
			if err := s.Set(fmt.Sprintf("key-%05d", i), fmt.Sprintf("%s-%d", val, round)); err != nil {
				b.Fatal(err)
			}
		}
	}
	for i := 0; i < 1000; i++ {
		if _, err := s.Del(fmt.Sprintf("key-%05d", i*4)); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	copyFile(b, raw, compacted)
	s2, err := kvstore.Open(kvstore.Config{AOFPath: compacted, Striping: 4})
	if err != nil {
		b.Fatal(err)
	}
	if err := s2.Rewrite(); err != nil {
		b.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		b.Fatal(err)
	}
	return raw, compacted
}

func benchKvstoreRecovery(b *testing.B, path string) {
	b.Helper()
	var ops int64
	for i := 0; i < b.N; i++ {
		s, err := kvstore.Open(kvstore.Config{AOFPath: path, Striping: 4})
		if err != nil {
			b.Fatal(err)
		}
		st := s.Stats()
		ops = st.ReplayOps
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ops), "replayed_ops")
}

func benchSchema() relstore.Schema {
	return relstore.Schema{
		Name: "records",
		Columns: []relstore.Column{
			{Name: "key", Type: relstore.TypeText},
			{Name: "data", Type: relstore.TypeText},
		},
		PrimaryKey: "key",
	}
}

// buildRelstoreLogs writes a churned WAL and returns the raw path and a
// checkpointed copy (live WAL truncated, snapshot in the .ckpt sidecar).
func buildRelstoreLogs(b *testing.B, dir string) (raw, compacted string) {
	b.Helper()
	raw = filepath.Join(dir, "raw.wal")
	compacted = filepath.Join(dir, "compacted.wal")
	db, err := relstore.Open(relstore.Config{WALPath: raw, WALSync: wal.SyncOnCommit})
	if err != nil {
		b.Fatal(err)
	}
	if err := db.CreateTable(benchSchema()); err != nil {
		b.Fatal(err)
	}
	if err := db.Recover(); err != nil {
		b.Fatal(err)
	}
	val := strings.Repeat("v", 64)
	for i := 0; i < 4000; i++ {
		if err := db.Insert("records", relstore.Row{fmt.Sprintf("key-%05d", i), val}); err != nil {
			b.Fatal(err)
		}
	}
	for round := 0; round < 7; round++ {
		for i := 0; i < 4000; i++ {
			k := fmt.Sprintf("key-%05d", i)
			if err := db.Update("records", k, relstore.Row{k, fmt.Sprintf("%s-%d", val, round)}); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := db.Close(); err != nil {
		b.Fatal(err)
	}
	copyFile(b, raw, compacted)
	db2, err := relstore.Open(relstore.Config{WALPath: compacted, WALSync: wal.SyncOnCommit})
	if err != nil {
		b.Fatal(err)
	}
	if err := db2.CreateTable(benchSchema()); err != nil {
		b.Fatal(err)
	}
	if err := db2.Recover(); err != nil {
		b.Fatal(err)
	}
	if err := db2.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		b.Fatal(err)
	}
	return raw, compacted
}

func benchRelstoreRecovery(b *testing.B, path string) {
	b.Helper()
	var records int64
	for i := 0; i < b.N; i++ {
		db, err := relstore.Open(relstore.Config{WALPath: path, WALSync: wal.SyncOnCommit})
		if err != nil {
			b.Fatal(err)
		}
		if err := db.CreateTable(benchSchema()); err != nil {
			b.Fatal(err)
		}
		if err := db.Recover(); err != nil {
			b.Fatal(err)
		}
		records, _, _ = db.RecoveryStats()
		if err := db.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(records), "replayed_records")
}

func BenchmarkRecovery(b *testing.B) {
	kvDir := b.TempDir()
	kvRaw, kvCompacted := buildKvstoreLogs(b, kvDir)
	b.Run("kvstore/raw", func(b *testing.B) { benchKvstoreRecovery(b, kvRaw) })
	b.Run("kvstore/compacted", func(b *testing.B) { benchKvstoreRecovery(b, kvCompacted) })

	relDir := b.TempDir()
	relRaw, relCompacted := buildRelstoreLogs(b, relDir)
	b.Run("relstore/raw", func(b *testing.B) { benchRelstoreRecovery(b, relRaw) })
	b.Run("relstore/checkpointed", func(b *testing.B) { benchRelstoreRecovery(b, relCompacted) })
}

package gdprbench

// One testing.B benchmark per table and figure of the paper's evaluation,
// plus ablation benches for the design choices DESIGN.md calls out. Each
// figure bench runs the corresponding experiment harness end to end and
// reports headline series values as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the paper's artifacts. EXPERIMENTS.md records the
// paper-reported values next to measured ones.

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/acl"
	"repro/internal/audit"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/gdpr"
	"repro/internal/kvstore"
	"repro/internal/obs"
	"repro/internal/relstore"
	"repro/internal/remote"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/wire"
)

// benchExperiment runs one experiment per iteration and logs its table.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := RunExperiment(id, ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res)
		}
	}
}

// parseDur parses a duration cell from an experiment row.
func parseDur(b *testing.B, s string) time.Duration {
	b.Helper()
	d, err := time.ParseDuration(s)
	if err != nil {
		b.Fatalf("bad duration %q: %v", s, err)
	}
	return d
}

func BenchmarkTable1Articles(b *testing.B)   { benchExperiment(b, "T1") }
func BenchmarkTable2aWorkloads(b *testing.B) { benchExperiment(b, "T2a") }

// BenchmarkFig3a regenerates the Redis TTL erasure-delay curve and reports
// the largest size's lazy delay (virtual seconds) and strict delay.
func BenchmarkFig3a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunExperiment("F3a", ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(parseDur(b, last[1]).Seconds(), "lazy-erase-vsec")
		b.ReportMetric(parseDur(b, last[2]).Seconds(), "strict-erase-vsec")
		if i == 0 {
			b.Logf("\n%s", res)
		}
	}
}

// BenchmarkFig3b regenerates the pgbench-vs-indices throughput collapse
// and reports the two-index relative throughput (paper: ~33%).
func BenchmarkFig3b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunExperiment("F3b", ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		rel := strings.TrimSuffix(res.Rows[2][2], "%")
		v, err := strconv.ParseFloat(rel, 64)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(v, "tps-2idx-%of-baseline")
		if i == 0 {
			b.Logf("\n%s", res)
		}
	}
}

func BenchmarkFig4aRedisFeatures(b *testing.B)    { benchExperiment(b, "F4a") }
func BenchmarkFig4bPostgresFeatures(b *testing.B) { benchExperiment(b, "F4b") }

// fig5Bench reports each workload's completion time in milliseconds.
func fig5Bench(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := RunExperiment(id, ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(float64(parseDur(b, row[1]).Milliseconds()), row[0]+"-ms")
		}
		if i == 0 {
			b.Logf("\n%s", res)
		}
	}
}

func BenchmarkFig5aGDPRbenchRedis(b *testing.B)           { fig5Bench(b, "F5a") }
func BenchmarkFig5bGDPRbenchPostgres(b *testing.B)        { fig5Bench(b, "F5b") }
func BenchmarkFig5cGDPRbenchPostgresIndexed(b *testing.B) { fig5Bench(b, "F5c") }

// BenchmarkTable3SpaceOverhead reports the three space factors.
func BenchmarkTable3SpaceOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunExperiment("T3", ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		names := []string{"redis-x", "pg-x", "pg-idx-x", "redis-idx-x"}
		for r, row := range res.Rows {
			v, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "x"), 64)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(v, names[r])
		}
		if i == 0 {
			b.Logf("\n%s", res)
		}
	}
}

// BenchmarkFig6YCSBvsGDPR reports the throughput gap per engine.
func BenchmarkFig6YCSBvsGDPR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunExperiment("F6", ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			v, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "x"), 64)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(v, strings.ToLower(row[0])+"-gap-x")
		}
		if i == 0 {
			b.Logf("\n%s", res)
		}
	}
}

// scaleBench reports the smallest and largest sizes' completion times, the
// growth ratio being the figure's shape.
func scaleBench(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := RunExperiment(id, ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		first := parseDur(b, res.Rows[0][1])
		last := parseDur(b, res.Rows[len(res.Rows)-1][1])
		b.ReportMetric(float64(first.Milliseconds()), "smallest-ms")
		b.ReportMetric(float64(last.Milliseconds()), "largest-ms")
		if first > 0 {
			b.ReportMetric(float64(last)/float64(first), "growth-x")
		}
		if i == 0 {
			b.Logf("\n%s", res)
		}
	}
}

func BenchmarkFig7aRedisYCSBScale(b *testing.B)    { scaleBench(b, "F7a") }
func BenchmarkFig7bRedisGDPRScale(b *testing.B)    { scaleBench(b, "F7b") }
func BenchmarkFig8aPostgresYCSBScale(b *testing.B) { scaleBench(b, "F8a") }
func BenchmarkFig8bPostgresGDPRScale(b *testing.B) { scaleBench(b, "F8b") }

// BenchmarkFig9ShardScale regenerates the F9 shard-scaling experiment and
// reports per-engine completion at the smallest and largest shard counts.
func BenchmarkFig9ShardScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunExperiment("F9", ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
		b.ReportMetric(float64(parseDur(b, first[1]).Milliseconds()), "redis-1shard-ms")
		b.ReportMetric(float64(parseDur(b, last[1]).Milliseconds()), "redis-8shard-ms")
		b.ReportMetric(float64(parseDur(b, first[2]).Milliseconds()), "pg-1shard-ms")
		b.ReportMetric(float64(parseDur(b, last[2]).Milliseconds()), "pg-8shard-ms")
		if i == 0 {
			b.Logf("\n%s", res)
		}
	}
}

// BenchmarkFig12AuditPipeline regenerates the F12 audit-pipeline
// ablation and reports each engine's sync-over-async recovery factor.
func BenchmarkFig12AuditPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunExperiment("F12", ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			v, err := strconv.ParseFloat(strings.TrimSuffix(row[5], "x"), 64)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(v, row[0]+"-sync/async-x")
		}
		if i == 0 {
			b.Logf("\n%s", res)
		}
	}
}

// ---------------------------------------------------------------------------
// Audit pipeline: sync vs batched vs async appends on the §3.3 hot path

// benchAuditOps loads one engine model with logging in its strict
// durable configuration (audit fsync per commit) and hammers it with
// the audited customer point-op shape — 3 reads to 1 rectification —
// from the given number of client threads. ops/s is reported so the
// three pipeline legs compare directly: the gap to `sync` is the
// serialized encode+write+fsync cost the pipeline removes from the
// callers' critical path.
func benchAuditOps(b *testing.B, engine string, policy AuditPolicy, threads int) {
	b.Helper()
	comp := core.Compliance{AccessControl: true, Strict: true, Logging: true}
	var db DB
	var err error
	switch engine {
	case "redis":
		db, err = OpenRedis(RedisConfig{
			Dir: b.TempDir(), Compliance: comp, DisableBackgroundExpiry: true,
			AuditPolicy: policy, AuditSyncAlways: true,
		})
	case "postgres":
		db, err = OpenPostgres(PostgresConfig{
			Dir: b.TempDir(), Compliance: comp, DisableTTLDaemon: true,
			AuditPolicy: policy, AuditSyncAlways: true,
		})
	default:
		b.Fatalf("unknown engine %q", engine)
	}
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	cfg := core.Config{Records: 2_000, Threads: 8, Seed: 1}.WithDefaults()
	ds, _, err := core.Load(db, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	actors := make([]Actor, cfg.Records)
	sels := make([]Selector, cfg.Records)
	for i := 0; i < cfg.Records; i++ {
		actors[i] = CustomerActor(ds.UserAt(i))
		sels[i] = ByKey(ds.KeyAt(i))
	}

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= b.N {
					return
				}
				k := (i * 31) % cfg.Records
				if i%4 == 3 {
					if _, err := db.UpdateData(actors[k], ds.KeyAt(k), "rectified!!"); err != nil {
						b.Error(err)
						return
					}
					continue
				}
				if _, err := db.ReadData(actors[k], sels[k]); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/s")
}

// BenchmarkAuditPipeline sweeps the audit append pipeline (sync vs
// batched vs async) × engine model × client threads on the audited
// point-op shape, with the trail in its strict durable configuration.
// `sync` is the old audit.Log profile: every operation encodes, writes
// and fsyncs inside its own critical section, serializing all threads
// behind one lock. `batched` keeps the durable wait but group-commits —
// concurrent committers share one fsync. `async` removes the wait;
// backpressure is the only blocking. The acceptance bar is batched and
// async beating sync on ops/s at >= 4 threads (DESIGN.md §4 records
// reference numbers).
func BenchmarkAuditPipeline(b *testing.B) {
	for _, engine := range []string{"redis", "postgres"} {
		for _, policy := range []AuditPolicy{AuditSync, AuditBatched, AuditAsync} {
			for _, threads := range []int{1, 4, 8} {
				b.Run(fmt.Sprintf("%s/%s/threads=%d", engine, policy, threads), func(b *testing.B) {
					benchAuditOps(b, engine, policy, threads)
				})
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Sharding: attribute-scan throughput vs shard count

// benchShardedScan loads records into a sharded engine and hammers it
// with BY-USR attribute reads — the O(n) scan shape that dominates GDPR
// metadata queries on the Redis model — from the given number of client
// threads. Every query scatter-gathers all shards, so each shard scans
// 1/N of the data in parallel; ops/s is reported for cross-leg
// comparison. Compliance is ACL+strict only, isolating scan parallelism
// from encryption and audit I/O.
func benchShardedScan(b *testing.B, engine string, shards, threads int) {
	b.Helper()
	comp := core.Compliance{AccessControl: true, Strict: true}
	db, err := OpenSharded(engine, shards, "", comp, nil, true, AuditSync, 0, Tuning{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	cfg := core.Config{Records: 4_000, Threads: threads, Seed: 1}.WithDefaults()
	ds, _, err := core.Load(db, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	users := ds.Users
	actors := make([]Actor, users)
	sels := make([]Selector, users)
	for u := 0; u < users; u++ {
		actors[u] = CustomerActor(ds.UserName(u))
		sels[u] = ByUser(ds.UserName(u))
	}

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= b.N {
					return
				}
				u := (i * 31) % users
				recs, err := db.ReadData(actors[u], sels[u])
				if err != nil {
					b.Error(err)
					return
				}
				if len(recs) == 0 {
					b.Error("scan returned nothing")
					return
				}
			}
		}()
	}
	wg.Wait()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/s")
}

// BenchmarkSharding sweeps shard count × engine model × client threads on
// the attribute-scan workload. On the Redis model every BY-USR read scans
// the whole keyspace, so scan throughput is the axis §6.3 shows degrading
// with data volume — sharding splits each scan N ways and runs the parts
// in parallel, making throughput recover with shard count once client
// concurrency (≥4 threads) and cores can feed the shards.
func BenchmarkSharding(b *testing.B) {
	for _, engine := range []string{"redis", "postgres"} {
		for _, shards := range []int{1, 2, 4, 8} {
			for _, threads := range []int{4, 8} {
				b.Run(fmt.Sprintf("%s/shards=%d/threads=%d", engine, shards, threads), func(b *testing.B) {
					benchShardedScan(b, engine, shards, threads)
				})
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Network service layer: embedded vs localhost TCP

// benchNetworkPointReads hammers one engine model with customer point
// reads (READ-DATA-BY-KEY, the scatter-free shape where per-operation
// service cost dominates), either embedded or through the wire protocol
// over localhost TCP. ops/s is reported so the two transport legs
// compare directly; the gap is the per-operation cost of framing,
// socket hops and the role-bound session layer.
func benchNetworkPointReads(b *testing.B, engine string, overTCP bool, threads int) {
	b.Helper()
	comp := core.Compliance{AccessControl: true, Strict: true}
	host, err := OpenEngine(engine, 1, "", comp, nil, true, AuditSync, 0, Tuning{})
	if err != nil {
		b.Fatal(err)
	}
	defer host.Close()
	db := host
	if overTCP {
		srv := server.New(host, server.Config{})
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		cli, err := remote.Dial(remote.Config{Addr: addr, ConnsPerRole: max(2, threads/2)})
		if err != nil {
			b.Fatal(err)
		}
		defer cli.Close()
		db = cli
	}
	cfg := core.Config{Records: 2_000, Threads: 8, Seed: 1}.WithDefaults()
	ds, _, err := core.Load(db, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	actors := make([]Actor, cfg.Records)
	sels := make([]Selector, cfg.Records)
	for i := 0; i < cfg.Records; i++ {
		actors[i] = CustomerActor(ds.UserAt(i))
		sels[i] = ByKey(ds.KeyAt(i))
	}

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= b.N {
					return
				}
				k := (i * 31) % cfg.Records
				recs, err := db.ReadData(actors[k], sels[k])
				if err != nil {
					b.Error(err)
					return
				}
				if len(recs) != 1 {
					b.Errorf("point read returned %d records", len(recs))
					return
				}
			}
		}()
	}
	wg.Wait()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/s")
}

// BenchmarkNetworkOverhead sweeps transport (embedded vs localhost TCP)
// × engine model × client threads on the point-read shape. The TCP legs
// run the full network subsystem — pipelined wire protocol, role-bound
// sessions, server-side compliance — so the embedded/TCP gap is the
// paper's client/server round-trip cost reproduced in-tree.
func BenchmarkNetworkOverhead(b *testing.B) {
	for _, engine := range []string{"redis", "postgres"} {
		for _, leg := range []struct {
			name    string
			overTCP bool
		}{
			{"embedded", false},
			{"tcp", true},
		} {
			for _, threads := range []int{1, 4} {
				b.Run(fmt.Sprintf("%s/%s/threads=%d", engine, leg.name, threads), func(b *testing.B) {
					benchNetworkPointReads(b, engine, leg.overTCP, threads)
				})
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Metadata indexing: indexed attribute reads vs the scan baseline

// benchMetadataReads loads records into one engine model and hammers it
// with BY-USR attribute reads — O(n) scans with indexing off, O(result)
// inverted-index (redis) or secondary-B-tree (postgres) probes with it
// on. ops/s is reported so the indexed and scan legs compare directly.
func benchMetadataReads(b *testing.B, engine string, records int, indexed bool) {
	b.Helper()
	comp := core.Compliance{AccessControl: true, Strict: true, MetadataIndexing: indexed}
	db, err := OpenEngine(engine, 1, "", comp, nil, true, AuditSync, 0, Tuning{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	cfg := core.Config{Records: records, Seed: 1}.WithDefaults()
	ds, _, err := core.Load(db, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	users := ds.Users
	actors := make([]Actor, users)
	sels := make([]Selector, users)
	for u := 0; u < users; u++ {
		actors[u] = CustomerActor(ds.UserName(u))
		sels[u] = ByUser(ds.UserName(u))
	}

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		u := (i * 31) % users
		recs, err := db.ReadData(actors[u], sels[u])
		if err != nil {
			b.Fatal(err)
		}
		if len(recs) == 0 {
			b.Fatal("attribute read returned nothing")
		}
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/s")
}

// BenchmarkMetadataIndexing sweeps indexed vs scan × record count × both
// engine models on the BY-USR attribute-read shape. The scan legs degrade
// linearly with records (the §6.3 axis); the indexed legs are O(result)
// and should hold flat — at 10k+ records the indexed Redis leg must beat
// its scan baseline by orders of magnitude, which is the acceptance bar
// for the metadata-index layer.
func BenchmarkMetadataIndexing(b *testing.B) {
	for _, engine := range []string{"redis", "postgres"} {
		for _, records := range []int{1_000, 10_000} {
			for _, leg := range []struct {
				name    string
				indexed bool
			}{
				{"scan", false},
				{"indexed", true},
			} {
				b.Run(fmt.Sprintf("%s/records=%d/%s", engine, records, leg.name), func(b *testing.B) {
					benchMetadataReads(b, engine, records, leg.indexed)
				})
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Locking ablation: relstore global mutex vs table locks + snapshots

// benchRelstoreMix runs a read-heavy (Processor-style) operation mix —
// 55% indexed selector reads (the READ-DATA-BY-attribute shape that
// dominates the processor workload), 40% point reads by key, 5%
// read-modify-write updates — against a 10k-row table, spread over the
// given number of worker goroutines. Keys and predicates are precomputed
// so the timed loop measures the engine, not fmt. It reports ops/sec so
// the global-lock and table-lock legs compare directly.
func benchRelstoreMix(b *testing.B, globalLock, durable bool, threads int) {
	b.Helper()
	cfg := relstore.Config{GlobalLock: globalLock}
	if durable {
		cfg.WALPath = filepath.Join(b.TempDir(), "bench.wal")
		cfg.WALSync = wal.SyncOnCommit
	}
	db, err := relstore.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	schema := relstore.Schema{
		Name: "records",
		Columns: []relstore.Column{
			{Name: "key", Type: relstore.TypeText},
			{Name: "data", Type: relstore.TypeText},
			{Name: "usr", Type: relstore.TypeText},
			{Name: "score", Type: relstore.TypeInt},
		},
		PrimaryKey: "key",
	}
	if err := db.CreateTable(schema); err != nil {
		b.Fatal(err)
	}
	if err := db.Recover(); err != nil {
		b.Fatal(err)
	}
	if err := db.CreateIndex("records", "usr"); err != nil {
		b.Fatal(err)
	}
	const records, users = 10_000, 1000
	keys := make([]string, records)
	for i := 0; i < records; i++ {
		keys[i] = fmt.Sprintf("k%06d", i)
		row := relstore.Row{keys[i], "data-payload", fmt.Sprintf("u%d", i%users), int64(0)}
		if err := db.Insert("records", row); err != nil {
			b.Fatal(err)
		}
	}
	preds := make([]relstore.Predicate, users)
	for u := 0; u < users; u++ {
		preds[u] = relstore.Eq("usr", fmt.Sprintf("u%d", u))
	}

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= b.N {
					return
				}
				switch {
				case i%20 < 11: // 55%: indexed selector read (~10 rows)
					if _, err := db.Select("records", preds[(i*31)%users]); err != nil {
						b.Error(err)
						return
					}
				case i%20 < 19: // 40%: point read by key
					if _, _, err := db.Get("records", keys[(i*7)%records]); err != nil {
						b.Error(err)
						return
					}
				default: // 5%: read-modify-write
					if _, err := db.UpdateFunc("records", keys[(i*13)%records], func(r relstore.Row) (relstore.Row, error) {
						r[3] = r[3].(int64) + 1
						return r, nil
					}); err != nil {
						b.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/s")
}

// BenchmarkRelstoreLocking compares the seed's single global mutex
// against per-table locking with copy-on-write snapshot reads, at 1, 4
// and 8 worker threads on the Processor-style read-heavy mix — in
// memory-only form and with synchronous-commit WAL writes. The
// table-lock leg's reads never take a lock at all (they scale with
// cores), and its commits fsync outside the lock via group commit; the
// global-lock baseline serializes reads behind writers and, in the
// durable variant, behind every writer's fsync, which is the seed's
// original profile.
func BenchmarkRelstoreLocking(b *testing.B) {
	for _, mode := range []struct {
		name    string
		durable bool
	}{
		{"mem", false},
		{"wal", true},
	} {
		for _, leg := range []struct {
			name   string
			global bool
		}{
			{"global-lock", true},
			{"table-lock", false},
		} {
			for _, threads := range []int{1, 4, 8} {
				b.Run(fmt.Sprintf("%s/%s/threads=%d", mode.name, leg.name, threads), func(b *testing.B) {
					benchRelstoreMix(b, leg.global, mode.durable, threads)
				})
			}
		}
	}
}

// benchKvstoreMix runs a point-op command mix against a 10k-key store
// from the given number of worker goroutines, with a background expiry
// cycle running throughout. Two mixes: "mixed" is 55% GET, 30% SET, 10%
// SETEX (arming TTLs for the expiry sweep), 5% DEL; "get95" is the
// GDPRbench read-dominated profile — 95% GET, 5% SET — where the
// striped RWMutex read path lets all threads read one stripe
// concurrently. Keys are precomputed so the timed loop measures the
// engine, not fmt. It reports ops/sec and allocs/op so the single-mutex
// and striped legs compare directly.
func benchKvstoreMix(b *testing.B, mix string, striping int, durable bool, threads int) {
	b.Helper()
	cfg := kvstore.Config{Striping: striping, ExpiryMode: kvstore.ExpiryStrict}
	if durable {
		cfg.AOFPath = filepath.Join(b.TempDir(), "bench.aof")
		cfg.AOFSync = kvstore.FsyncEverySec
	}
	s, err := kvstore.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const records = 10_000
	keys := make([]string, records)
	for i := 0; i < records; i++ {
		keys[i] = fmt.Sprintf("k%06d", i)
		if err := s.Set(keys[i], "data-payload"); err != nil {
			b.Fatal(err)
		}
	}
	stopExp := make(chan struct{})
	expDone := make(chan struct{})
	go func() {
		defer close(expDone)
		for {
			select {
			case <-stopExp:
				return
			default:
				s.CycleOnce()
				time.Sleep(time.Millisecond)
			}
		}
	}()

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= b.N {
					return
				}
				if mix == "get95" {
					if i%20 < 19 { // 95%: point read
						s.Get(keys[(i*7)%records])
					} else if err := s.Set(keys[(i*31)%records], "data-payload-v2"); err != nil { // 5%: overwrite
						b.Error(err)
						return
					}
					continue
				}
				switch {
				case i%20 < 11: // 55%: point read
					s.Get(keys[(i*7)%records])
				case i%20 < 17: // 30%: overwrite
					if err := s.Set(keys[(i*31)%records], "data-payload-v2"); err != nil {
						b.Error(err)
						return
					}
				case i%20 < 19: // 10%: arm a TTL (feeds the expiry sweep)
					if err := s.SetWithExpiry(keys[(i*13)%records], "ttl-payload", time.Now().Add(time.Hour)); err != nil {
						b.Error(err)
						return
					}
				default: // 5%: delete (the key returns via a later SET)
					if _, err := s.Del(keys[(i*3)%records]); err != nil {
						b.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	close(stopExp)
	<-expDone
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "ops/s")
}

// BenchmarkKvstoreLocking compares the Redis-faithful single-mutex
// command core (striping=0, inline AOF) against the lock-striped engine
// with the staged group-commit AOF, at 1, 4 and 8 worker threads — in
// memory-only form and with an everysec AOF. The striped legs' commands
// on different stripes never contend, and their AOF appends leave the
// command path entirely; the single-mutex baseline serializes every
// command and pays the append inline, which is the paper's Redis
// profile. (On a 1-vCPU host the legs converge — the striped profile's
// win is parallelism, not fewer instructions.) The get95 mix isolates
// the RWMutex read path: at ≥4 threads the striped legs' readers share
// each stripe's lock instead of convoying on it.
func BenchmarkKvstoreLocking(b *testing.B) {
	for _, mode := range []struct {
		name    string
		durable bool
	}{
		{"mem", false},
		{"aof", true},
	} {
		for _, mix := range []string{"mixed", "get95"} {
			for _, striping := range []int{0, 4, 16} {
				for _, threads := range []int{1, 4, 8} {
					b.Run(fmt.Sprintf("%s/%s/striping=%d/threads=%d", mode.name, mix, striping, threads), func(b *testing.B) {
						benchKvstoreMix(b, mix, striping, mode.durable, threads)
					})
				}
			}
		}
	}
}

// BenchmarkWireAlloc measures per-frame allocations through the wire
// codec: the pooled path (per-connection Encoder/Decoder reusing their
// buffers across frames, as server and remote connections do) against
// the package-level per-call path. Legs cover a small point-read
// request and a 10-record Records response.
func BenchmarkWireAlloc(b *testing.B) {
	rec := mustRecord(b)
	frames := []struct {
		name string
		msg  wire.Message
	}{
		{"read-data", &wire.ReadData{
			Actor: acl.Actor{Role: acl.Customer, ID: "neo"},
			Sel:   gdpr.ByKey("r0000001"),
		}},
		{"records10", &wire.Records{Recs: func() []string {
			recs := make([]string, 10)
			for i := range recs {
				recs[i] = rec
			}
			return recs
		}()}},
	}
	for _, f := range frames {
		b.Run("pooled/"+f.name, func(b *testing.B) {
			var enc wire.Encoder
			var dec wire.Decoder
			var buf bytes.Buffer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := enc.WriteMessage(&buf, f.msg); err != nil {
					b.Fatal(err)
				}
				if _, err := dec.ReadMessage(&buf); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("percall/"+f.name, func(b *testing.B) {
			var buf bytes.Buffer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := wire.WriteMessage(&buf, f.msg); err != nil {
					b.Fatal(err)
				}
				if _, err := wire.ReadMessage(&buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// mustRecord returns one encoded §4.2.1 record for wire payloads.
func mustRecord(b *testing.B) string {
	b.Helper()
	return gdpr.Encode(gdpr.Record{
		Key:  "r0000001",
		Data: "123-456-7890",
		Meta: gdpr.Metadata{
			Purposes:   []string{"ads"},
			Expiry:     time.Unix(1_552_867_200, 0).UTC(),
			User:       "u0001",
			SharedWith: []string{"shr01"},
			Source:     "first-party",
		},
	})
}

// ---------------------------------------------------------------------------
// Ablation benches (DESIGN.md §7)

// BenchmarkAblationExpiry compares the native lazy expiry cycle against
// the paper's strict full-scan retrofit on a 100k-key store.
func BenchmarkAblationExpiry(b *testing.B) {
	for _, mode := range []kvstore.ExpiryMode{kvstore.ExpiryLazy, kvstore.ExpiryStrict} {
		b.Run(mode.String(), func(b *testing.B) {
			sim := clock.NewSim(time.Time{})
			s, err := kvstore.Open(kvstore.Config{Clock: sim, ExpiryMode: mode})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			now := sim.Now()
			for i := 0; i < 100_000; i++ {
				exp := now.Add(5 * 24 * time.Hour)
				if i%5 == 0 {
					exp = now.Add(5 * time.Minute)
				}
				if err := s.SetWithExpiry(fmt.Sprintf("k%d", i), "v", exp); err != nil {
					b.Fatal(err)
				}
			}
			sim.Advance(5*time.Minute + time.Second)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.CycleOnce()
			}
		})
	}
}

// BenchmarkAblationAuditSync sweeps the audit sync policy (off / everysec
// / always) over persistent appends.
func BenchmarkAblationAuditSync(b *testing.B) {
	for _, policy := range []audit.Policy{audit.SyncNone, audit.SyncEverySec, audit.SyncAlways} {
		b.Run(policy.String(), func(b *testing.B) {
			log, err := audit.Open(audit.Config{
				Path:   filepath.Join(b.TempDir(), "audit.log"),
				Policy: policy,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer log.Close()
			e := audit.Entry{Actor: "processor:p1", Op: "READ-DATA", Target: "r0001234", OK: true}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := log.Append(e); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationIndexes sweeps how many metadata columns carry
// secondary indexes, measuring insert cost (the write-amplification side
// of Table 3 / Figure 3b).
func BenchmarkAblationIndexes(b *testing.B) {
	sets := map[string][]string{
		"none":    nil,
		"usr":     {"usr"},
		"usr+pur": {"usr", "pur"},
		"all7":    {"pur", "ttl", "usr", "obj", "dec", "shr", "src"},
	}
	for _, name := range []string{"none", "usr", "usr+pur", "all7"} {
		cols := sets[name]
		b.Run(name, func(b *testing.B) {
			sim := clock.NewSim(time.Time{})
			client, err := core.OpenPostgres(core.PostgresConfig{
				Clock: sim, DisableTTLDaemon: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer client.Close()
			for _, col := range cols {
				if err := client.DB().CreateIndex(core.RecordsTable, col); err != nil {
					b.Fatal(err)
				}
			}
			ds := core.NewDataset(core.Config{Records: 1 << 30, Seed: 1}, sim.Now())
			actor := core.ControllerActor()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := client.CreateRecord(actor, ds.RecordAt(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTransit measures the per-operation cost of the
// in-transit record layer against plaintext framing.
func BenchmarkAblationTransit(b *testing.B) {
	sim := clock.NewSim(time.Time{})
	for _, encrypted := range []bool{false, true} {
		name := "plaintext"
		comp := core.Compliance{Strict: true}
		if encrypted {
			name = "encrypted"
			comp.EncryptInTransit = true
		}
		b.Run(name, func(b *testing.B) {
			client, err := core.OpenRedis(core.RedisConfig{
				Clock: sim, Compliance: comp, DisableBackgroundExpiry: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer client.Close()
			ds := core.NewDataset(core.Config{Records: 1000, Seed: 1}, sim.Now())
			actor := core.ControllerActor()
			for i := 0; i < 1000; i++ {
				if err := client.CreateRecord(actor, ds.RecordAt(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.ReadData(actor, ByKey(ds.KeyAt(i%1000))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGDPRQueryLatencies measures each GDPR query family's latency
// on the compliant Redis-model engine (the per-query view behind Fig 5a).
func BenchmarkGDPRQueryLatencies(b *testing.B) {
	sim := clock.NewSim(time.Time{})
	client, err := core.OpenRedis(core.RedisConfig{
		Dir: b.TempDir(), Clock: sim,
		Compliance:              core.Compliance{Logging: true, AccessControl: true, Strict: true},
		DisableBackgroundExpiry: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	cfg := core.Config{Records: 5_000, Seed: 1}.WithDefaults()
	ds := core.NewDataset(cfg, sim.Now())
	actor := core.ControllerActor()
	for i := 0; i < cfg.Records; i++ {
		if err := client.CreateRecord(actor, ds.RecordAt(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("read-data-by-key", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec := ds.RecordAt(i % cfg.Records)
			a := ProcessorActor("p1", rec.Meta.Purposes[0])
			if _, err := client.ReadData(a, ByKey(rec.Key)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read-data-by-usr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			u := ds.UserAt(i % cfg.Records)
			if _, err := client.ReadData(CustomerActor(u), ByUser(u)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read-metadata-by-usr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := client.ReadMetadata(RegulatorActor(), ByUser(ds.UserAt(i%cfg.Records))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("update-metadata-by-key", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k := i % cfg.Records
			delta := Delta{Attr: AttrObjection, Op: DeltaAdd, Values: []string{ds.PurposeName(i)}}
			if _, err := client.UpdateMetadata(CustomerActor(ds.UserAt(k)), ByKey(ds.KeyAt(k)), delta); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("get-system-logs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			now := sim.Now()
			if _, err := client.GetSystemLogs(RegulatorActor(), now.Add(-time.Second), now); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Observability overhead

// benchObsOverheadMix drives a get95-style mix (95% point read, 5% data
// update) through the fully wrapped Redis-model stack with the given
// span-sampling period on the process registry — the same registry the
// middleware's always-on op counters hit on every iteration regardless.
func benchObsOverheadMix(b *testing.B, sampling int) {
	b.Helper()
	reg := obs.Default()
	prevSampling := reg.Sampling()
	prevThreshold := reg.SlowlogThreshold()
	reg.SetSlowlogThreshold(0)
	reg.SetSampling(sampling)
	defer func() {
		reg.SetSampling(prevSampling)
		reg.SetSlowlogThreshold(prevThreshold)
	}()

	comp := core.Compliance{AccessControl: true, Strict: true}
	db, err := OpenEngine("redis", 1, "", comp, nil, true, AuditSync, 0, Tuning{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	cfg := core.Config{Records: 2_000, Seed: 1}.WithDefaults()
	ds, _, err := core.Load(db, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	actors := make([]Actor, cfg.Records)
	sels := make([]Selector, cfg.Records)
	for i := 0; i < cfg.Records; i++ {
		actors[i] = CustomerActor(ds.UserAt(i))
		sels[i] = ByKey(ds.KeyAt(i))
	}

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		k := (i * 31) % cfg.Records
		if i%20 < 19 {
			recs, err := db.ReadData(actors[k], sels[k])
			if err != nil {
				b.Fatal(err)
			}
			if len(recs) != 1 {
				b.Fatalf("point read returned %d records", len(recs))
			}
			continue
		}
		if _, err := db.UpdateData(actors[k], ds.KeyAt(k), "data-payload-v2"); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/s")
}

// BenchmarkObsOverhead measures what the observability layer costs on
// the hot path: spans off (counters only), the default 1-in-16 sampling,
// and every-op tracing. The acceptance bar is <3% ops/s regression for
// the sampled leg against the off leg on this get95 mix; the full leg
// bounds the worst case a -slowlog-threshold run (which forces every-op
// tracing) can pay.
func BenchmarkObsOverhead(b *testing.B) {
	for _, leg := range []struct {
		name     string
		sampling int
	}{
		{"off", 0},
		{"sampled", obs.DefaultSampling},
		{"full", 1},
	} {
		b.Run(leg.name, func(b *testing.B) {
			benchObsOverheadMix(b, leg.sampling)
		})
	}
}

// ---------------------------------------------------------------------------
// Streaming export: chunked cursor vs materialized Select

// benchStreamingExport measures one full subject export per iteration —
// every record of one data subject who owns 1/8 of the store — either
// drained chunk by chunk through the streaming read path or
// materialized in one Select, embedded or over localhost TCP. allocs/op
// is the per-export allocation budget; the streaming legs must not
// regress it and must hold peak memory at O(chunk) rather than
// O(result) (the RSS claim F13 and the CI smoke check end to end).
func benchStreamingExport(b *testing.B, overTCP, streamed bool) {
	b.Helper()
	comp := core.Compliance{AccessControl: true, MetadataIndexing: true}
	host, err := OpenRedis(RedisConfig{
		Dir: b.TempDir(), Compliance: comp, KVStripes: 4, DisableBackgroundExpiry: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer host.Close()
	const records = 16_000
	cfg := core.Config{Records: records, RecordsPerUser: records / 8, Seed: 1}
	ds, _, err := core.Load(host, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	db := core.DB(host)
	if overTCP {
		srv := server.New(host, server.Config{})
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		cli, err := remote.Dial(remote.Config{Addr: addr})
		if err != nil {
			b.Fatal(err)
		}
		defer cli.Close()
		db = cli
	}
	subject := ds.CustomerActor(0)
	sel := ByUser(ds.UserName(0))
	want := records / 8

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var got int
		if streamed {
			cur, err := db.(core.StreamReader).ReadDataStream(subject, sel, core.DefaultStreamChunk)
			if err != nil {
				b.Fatal(err)
			}
			for {
				recs, err := cur.Next()
				if err != nil {
					if err != io.EOF {
						b.Fatal(err)
					}
					break
				}
				got += len(recs)
			}
			cur.Close()
		} else {
			recs, err := db.ReadData(subject, sel)
			if err != nil {
				b.Fatal(err)
			}
			got = len(recs)
		}
		if got != want {
			b.Fatalf("export saw %d records, want %d", got, want)
		}
	}
	b.ReportMetric(float64(want), "records/export")
}

// BenchmarkStreamingExport sweeps streamed vs materialized × embedded
// vs TCP on the subject-export shape (the G 15 / G 20 right-of-access
// query the streaming data plane exists for).
func BenchmarkStreamingExport(b *testing.B) {
	for _, leg := range []struct {
		name    string
		overTCP bool
	}{
		{"embedded", false},
		{"tcp", true},
	} {
		for _, mode := range []struct {
			name     string
			streamed bool
		}{
			{"materialized", false},
			{"streamed", true},
		} {
			b.Run(leg.name+"/"+mode.name, func(b *testing.B) {
				benchStreamingExport(b, leg.overTCP, mode.streamed)
			})
		}
	}
}

// Command experiments regenerates the paper's tables and figures as text
// tables, using the same harness the benchmarks use.
//
// Examples:
//
//	experiments                      # run everything at small scale
//	experiments -run F3a,F3b         # just the §5 microbenchmarks
//	experiments -run F5a -scale paper
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	gdprbench "repro"
)

func main() {
	var (
		runList = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		scale   = flag.String("scale", "small", "experiment scale: small | paper")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range gdprbench.Experiments() {
			fmt.Println(id)
		}
		return
	}

	ids := gdprbench.Experiments()
	if *runList != "" {
		ids = nil
		for _, id := range strings.Split(*runList, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}

	sc := gdprbench.ExperimentScale(*scale)
	failed := false
	for _, id := range ids {
		t0 := time.Now()
		res, err := gdprbench.RunExperiment(id, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Printf("%s(%v)\n\n", res, time.Since(t0).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}

// Command ycsb runs the traditional YCSB workloads (Table 2: A-F) against
// one of the two engines, with the paper's GDPR security features
// individually toggleable — the §6.1 experiment from the command line.
//
// Examples:
//
//	ycsb -engine redis -workload C -records 100000 -ops 100000
//	ycsb -engine postgres -workload A -log -encrypt
//	ycsb -engine redis -workload A -encrypt -ttl -log   # "combined"
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/audit"
	"repro/internal/kvstore"
	"repro/internal/relstore"
	"repro/internal/securefs"
	"repro/internal/transit"
	"repro/internal/wal"
	"repro/internal/ycsb"
)

func main() {
	var (
		engine   = flag.String("engine", "redis", "engine: redis | postgres")
		workload = flag.String("workload", "A", "YCSB workload letter (A-F)")
		records  = flag.Int("records", 10_000, "records to load")
		ops      = flag.Int("ops", 10_000, "operations to run")
		threads  = flag.Int("threads", 16, "client threads")
		seed     = flag.Int64("seed", 1, "random seed")
		dir      = flag.String("dir", "", "data directory (default: a temp dir)")
		encrypt  = flag.Bool("encrypt", false, "enable encryption at rest + in transit")
		ttl      = flag.Bool("ttl", false, "enable timely-deletion machinery")
		logAll   = flag.Bool("log", false, "log all operations including reads")
	)
	flag.Parse()
	if err := run(*engine, *workload, *records, *ops, *threads, *seed, *dir, *encrypt, *ttl, *logAll); err != nil {
		fmt.Fprintln(os.Stderr, "ycsb:", err)
		os.Exit(1)
	}
}

func run(engine, workload string, records, ops, threads int, seed int64, dir string, encrypt, ttl, logAll bool) error {
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "ycsb-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}
	kv, cleanup, err := build(engine, dir, encrypt, ttl, logAll)
	if err != nil {
		return err
	}
	defer cleanup()

	cfg := ycsb.Config{Records: records, Operations: ops, Threads: threads, Seed: seed}
	fmt.Printf("loading %d records into %s (encrypt=%v ttl=%v log=%v)...\n", records, engine, encrypt, ttl, logAll)
	loadRun, err := ycsb.Load(kv, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("load: %v (%.0f inserts/s)\n", loadRun.WallTime().Round(time.Millisecond), loadRun.Throughput())

	run, err := ycsb.Run(kv, workload, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("workload %s:\n%s", workload, run.Summary())
	return nil
}

// build assembles the engine + binding; the feature mapping matches §5.
func build(engine, dir string, encrypt, ttl, logAll bool) (ycsb.KV, func(), error) {
	ttlHorizon := func() (int64, bool) { return time.Now().Add(24 * time.Hour).UnixNano(), true }
	var pipe *transit.Pipe
	if encrypt {
		var err error
		pipe, err = transit.NewPipe(securefs.Key("ycsb-cli/transit"))
		if err != nil {
			return nil, nil, err
		}
	}
	switch engine {
	case "redis":
		kvCfg := kvstore.Config{}
		if logAll {
			kvCfg.AOFPath = filepath.Join(dir, "redis.aof")
			kvCfg.AOFSync = kvstore.FsyncEverySec
			kvCfg.LogReads = true
		}
		if encrypt && logAll {
			kvCfg.EncryptionKey = securefs.Key("ycsb-cli/aof")
		}
		if ttl {
			kvCfg.ExpiryMode = kvstore.ExpiryStrict
		}
		s, err := kvstore.Open(kvCfg)
		if err != nil {
			return nil, nil, err
		}
		b := ycsb.NewKVStoreBinding(s)
		if ttl {
			b.SetTTLFunc(ttlHorizon)
			s.StartExpiry()
		}
		return ycsb.NewWireKV(b, pipe), func() { s.Close() }, nil

	case "postgres":
		relCfg := relstore.Config{
			WALPath: filepath.Join(dir, "pg.wal"),
			WALSync: wal.SyncBatched,
		}
		if encrypt {
			relCfg.EncryptionKey = securefs.Key("ycsb-cli/wal")
		}
		var log *audit.Log
		if logAll {
			var err error
			log, err = audit.Open(audit.Config{Path: filepath.Join(dir, "pg-csvlog"), Policy: audit.SyncEverySec})
			if err != nil {
				return nil, nil, err
			}
			relCfg.Audit = log
			relCfg.LogStatements = true
		}
		db, err := relstore.Open(relCfg)
		if err != nil {
			return nil, nil, err
		}
		b, err := ycsb.NewRelStoreBinding(db, "usertable")
		if err != nil {
			db.Close()
			return nil, nil, err
		}
		if ttl {
			b.SetTTLFunc(ttlHorizon)
			if err := db.StartTTLDaemon("usertable", "ttl", time.Second); err != nil {
				db.Close()
				return nil, nil, err
			}
		}
		cleanup := func() {
			db.Close()
			if log != nil {
				log.Close()
			}
		}
		return ycsb.NewWireKV(b, pipe), cleanup, nil

	default:
		return nil, nil, fmt.Errorf("unknown engine %q", engine)
	}
}

package main

import (
	"errors"
	"testing"
)

// sink keeps test allocations alive so the compiler cannot elide them.
var sink [][]byte

// TestAllocMeterScopedToSection pins the allocs_per_op fix: only
// allocations made inside a measured section count, so load-phase or
// reporting allocations around the timed loops can no longer inflate
// the figure the way the old whole-run ReadMemStats delta did.
func TestAllocMeterScopedToSection(t *testing.T) {
	var m allocMeter

	// Heavy allocation OUTSIDE any measured section — the old
	// whole-run delta would have charged all of this.
	sink = sink[:0]
	for i := 0; i < 10_000; i++ {
		sink = append(sink, make([]byte, 256))
	}

	const ops = 1000
	if err := m.measure(func() (int64, error) {
		for i := 0; i < ops; i++ {
			sink = append(sink, make([]byte, 16))
		}
		return ops, nil
	}); err != nil {
		t.Fatal(err)
	}

	// More outside-the-section garbage after the measured loop.
	for i := 0; i < 10_000; i++ {
		sink = append(sink, make([]byte, 256))
	}

	got := m.allocsPerOp()
	// The section makes one escaping allocation per op plus slice
	// regrowth and runtime noise — a loose band well below the ~20
	// allocs/op the outside garbage would add if it leaked in.
	if got < 1 || got >= 10 {
		t.Fatalf("allocsPerOp = %.2f, want [1, 10): section scoping leaked outside allocations", got)
	}
	sink = nil
}

func TestAllocMeterErrorChargesNothing(t *testing.T) {
	var m allocMeter
	wantErr := errors.New("boom")
	err := m.measure(func() (int64, error) {
		sink = append(sink[:0], make([]byte, 1024))
		return 500, wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("measure error = %v, want %v", err, wantErr)
	}
	if got := m.allocsPerOp(); got != 0 {
		t.Fatalf("failed section charged the meter: %.2f allocs/op", got)
	}
	sink = nil
}

func TestAllocMeterAccumulatesAcrossSections(t *testing.T) {
	var m allocMeter
	for s := 0; s < 3; s++ {
		if err := m.measure(func() (int64, error) {
			sink = append(sink[:0], make([]byte, 64))
			return 100, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if m.ops != 300 {
		t.Fatalf("ops = %d, want 300", m.ops)
	}
	if got := m.allocsPerOp(); got <= 0 {
		t.Fatalf("allocsPerOp = %.2f, want > 0", got)
	}
	sink = nil
}

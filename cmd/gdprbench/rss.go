package main

import (
	"os"
	"runtime"
	"strconv"
	"strings"
)

// rssHighWaterBytes reports the process's peak resident set size — the
// number the streaming read path is accountable to: a streamed export
// must hold it near O(chunk) where the materializing path grows it by
// O(result). Read from /proc/self/status VmHWM (kernel-tracked peak,
// covers every allocation source); when that file is unavailable
// (non-Linux), fall back to the Go runtime's total OS footprint, which
// is monotone and so also a high-water mark.
func rssHighWaterBytes() int64 {
	if b, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			if !strings.HasPrefix(line, "VmHWM:") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				if kb, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
					return kb << 10
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys)
}

package main

import (
	"encoding/json"
	"os"
	"time"

	gdprbench "repro"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stats"
)

// The -json schema: one self-describing document per timed run, built
// from the same stats.Histogram accumulators the text report uses, so
// a bench trajectory can be recorded as BENCH_*.json files and diffed
// across commits. Engine-side blocks (kvstore, server, slowlog) read
// the obs registry — the process-local one for embedded runs, the
// server's own (over the METRICS wire verb) for -connect runs.

type jsonReport struct {
	Engine     string `json:"engine"`
	Records    int    `json:"records"`
	Operations int    `json:"operations"`
	Threads    int    `json:"threads"`
	Shards     int    `json:"shards"`
	Connect    string `json:"connect,omitempty"`
	// OpenLoop marks a run whose operations arrived on a fixed schedule
	// (-arrival-rate, ops/sec per workload). In that mode every per-op
	// latency below is measured from the operation's scheduled arrival,
	// so queueing delay is included (no coordinated omission).
	OpenLoop    bool    `json:"open_loop,omitempty"`
	ArrivalRate float64 `json:"arrival_rate,omitempty"`
	// RSSHighWaterBytes is the client process's peak resident set size at
	// report time (/proc/self/status VmHWM) — the bounded-memory claim of
	// the streaming read path is checked against it.
	RSSHighWaterBytes int64 `json:"rss_high_water_bytes"`
	// AllocsPerOp is the client process's heap allocations per workload
	// operation, metered around each timed loop alone (load-phase and
	// reporting allocations excluded).
	AllocsPerOp float64        `json:"allocs_per_op"`
	Load        jsonLoad       `json:"load"`
	Workloads   []jsonWorkload `json:"workloads"`
	Space       jsonSpace      `json:"space"`
	Audit       *jsonAudit     `json:"audit,omitempty"`
	Kvstore     *jsonKvstore   `json:"kvstore,omitempty"`
	Server      *jsonServer    `json:"server,omitempty"`
	Slowlog     []jsonSlowOp   `json:"slowlog,omitempty"`
}

// jsonAudit is the audit pipeline's accounting for the run. For remote
// runs the counters live server-side, so only the policy the server
// announced at handshake is recorded.
type jsonAudit struct {
	Policy        string `json:"policy"`
	Entries       int64  `json:"entries,omitempty"`
	Bytes         int64  `json:"bytes,omitempty"`
	Batches       int64  `json:"batches,omitempty"`
	Flushes       int64  `json:"flushes,omitempty"`
	MaxQueueDepth int64  `json:"max_queue_depth,omitempty"`
	Segments      int64  `json:"segments,omitempty"`
}

// jsonKvstore is the Redis-model engine's concurrency/persistence
// accounting for the run (stripe count, read- vs write-mode stripe-lock
// acquisitions and contention, full-keyspace scans served, dataset and
// index footprints, staged-AOF group commits and fsyncs), read from the
// obs registry the engine reports to — which is how it is now available
// for remote runs too. Absent for the postgres model.
type jsonKvstore struct {
	Stripes            int64 `json:"stripes"`
	FullScans          int64 `json:"full_scans"`
	ReadLocks          int64 `json:"read_locks"`
	WriteLocks         int64 `json:"write_locks"`
	LockContention     int64 `json:"lock_contention"`
	Bytes              int64 `json:"bytes"`
	IndexBytes         int64 `json:"index_bytes,omitempty"`
	AOFBatches         int64 `json:"aof_batches,omitempty"`
	AOFFlushes         int64 `json:"aof_flushes,omitempty"`
	AOFRewrites        int64 `json:"aof_rewrites,omitempty"`
	AOFLastRewriteUS   int64 `json:"aof_last_rewrite_us,omitempty"`
	AOFRewriteDiverted int64 `json:"aof_rewrite_diverted,omitempty"`
	ReplayOps          int64 `json:"replay_ops,omitempty"`
	ReplayUS           int64 `json:"replay_us,omitempty"`
}

// jsonServer is the network front end's accounting (remote runs only):
// frames served, sessions accepted, and the pipeline read-ahead depth
// distribution the client's request stream actually achieved.
type jsonServer struct {
	Frames           int64 `json:"frames"`
	Sessions         int64 `json:"sessions"`
	PipelineDepthP50 int64 `json:"pipeline_depth_p50"`
	PipelineDepthP95 int64 `json:"pipeline_depth_p95"`
	PipelineDepthMax int64 `json:"pipeline_depth_max"`
}

// jsonSlowOp is one slowlog entry: a traced operation whose total
// latency crossed -slowlog-threshold, with per-phase attribution.
type jsonSlowOp struct {
	Seq      uint64             `json:"seq"`
	Time     string             `json:"time,omitempty"`
	Op       string             `json:"op"`
	Role     string             `json:"role"`
	KeyClass string             `json:"key_class,omitempty"`
	Err      bool               `json:"err,omitempty"`
	TotalUS  float64            `json:"total_us"`
	PhasesUS map[string]float64 `json:"phases_us,omitempty"`
}

type jsonLoad struct {
	CompletionMS float64 `json:"completion_ms"`
	OpsPerSec    float64 `json:"ops_per_sec"`
}

type jsonWorkload struct {
	Workload     string            `json:"workload"`
	Operations   int64             `json:"operations"`
	Errors       int64             `json:"errors"`
	CompletionMS float64           `json:"completion_ms"`
	OpsPerSec    float64           `json:"ops_per_sec"`
	Ops          map[string]jsonOp `json:"ops"`
}

type jsonOp struct {
	OK     int64   `json:"ok"`
	Errors int64   `json:"errors"`
	P50us  float64 `json:"p50_us"`
	P95us  float64 `json:"p95_us"`
	P99us  float64 `json:"p99_us"`
	MaxUS  float64 `json:"max_us"`
}

type jsonSpace struct {
	PersonalBytes int64   `json:"personal_bytes"`
	TotalBytes    int64   `json:"total_bytes"`
	Factor        float64 `json:"factor"`
}

// obsSnapshot captures the registry the engine under test reports to:
// pulled over the METRICS wire verb for remote runs, read from the
// process-local default registry otherwise. A remote server predating
// the verb (or a pull error) degrades to an empty snapshot — the report
// just omits the engine-side blocks.
func obsSnapshot(db gdprbench.DB, isRemote bool) obs.Snapshot {
	if isRemote {
		if sm, ok := db.(interface {
			ServerMetrics(bool) (obs.Snapshot, error)
		}); ok {
			if snap, err := sm.ServerMetrics(true); err == nil {
				return snap
			}
		}
		return obs.Snapshot{}
	}
	return obs.Default().Snapshot(true)
}

// auditBlock derives the report's audit block from the DB under test:
// full pipeline counters for an embedded middleware, the announced
// policy alone for a remote client, nil when logging is off.
func auditBlock(db gdprbench.DB, opts options) *jsonAudit {
	if st, ok := db.(gdprbench.AuditStatser); ok {
		s, on := st.AuditStats()
		if !on {
			return nil
		}
		return &jsonAudit{
			Policy:        opts.auditPolicy.String(),
			Entries:       s.Appended,
			Bytes:         s.Bytes,
			Batches:       s.Batches,
			Flushes:       s.Flushes,
			MaxQueueDepth: s.MaxQueueDepth,
			Segments:      s.Segments,
		}
	}
	if rc, ok := db.(interface{ ServerAuditPolicy() string }); ok {
		if p := rc.ServerAuditPolicy(); p != "" {
			return &jsonAudit{Policy: p}
		}
	}
	return nil
}

// kvstoreBlock reads the Redis-model engine's series out of the obs
// snapshot; nil when no kvstore registered a collector (postgres runs,
// or a remote server without one).
func kvstoreBlock(snap obs.Snapshot) *jsonKvstore {
	stripes := snap.Gauge("kvstore_stripes")
	if stripes == 0 {
		return nil
	}
	return &jsonKvstore{
		Stripes:            stripes,
		FullScans:          snap.Counter("kvstore_full_scans_total"),
		ReadLocks:          snap.Counter("kvstore_read_locks_total"),
		WriteLocks:         snap.Counter("kvstore_write_locks_total"),
		LockContention:     snap.Counter("kvstore_lock_contention_total"),
		Bytes:              snap.Gauge("kvstore_bytes"),
		IndexBytes:         snap.Gauge("kvstore_index_bytes"),
		AOFBatches:         snap.Counter("kvstore_aof_batches_total"),
		AOFFlushes:         snap.Counter("kvstore_aof_flushes_total"),
		AOFRewrites:        snap.Counter("kvstore_aof_rewrites_total"),
		AOFLastRewriteUS:   snap.Gauge("kvstore_aof_last_rewrite_us"),
		AOFRewriteDiverted: snap.Counter("kvstore_aof_rewrite_diverted_total"),
		ReplayOps:          snap.Counter("kvstore_replay_ops_total"),
		ReplayUS:           snap.Counter("kvstore_replay_us_total"),
	}
}

// serverBlock reads the network front end's series; nil when the run
// was embedded (no server frames in the snapshot).
func serverBlock(snap obs.Snapshot) *jsonServer {
	frames := snap.Counter("server_frames_total")
	if frames == 0 {
		return nil
	}
	depth := snap.Hists["server_pipeline_depth"]
	return &jsonServer{
		Frames:           frames,
		Sessions:         snap.Counter("server_connections_total"),
		PipelineDepthP50: depth.P50,
		PipelineDepthP95: depth.P95,
		PipelineDepthMax: depth.Max,
	}
}

// slowlogBlock renders the snapshot's slowlog (newest first), phase
// durations keyed by phase name.
func slowlogBlock(snap obs.Snapshot) []jsonSlowOp {
	if len(snap.Slowlog) == 0 {
		return nil
	}
	out := make([]jsonSlowOp, 0, len(snap.Slowlog))
	for _, e := range snap.Slowlog {
		op := jsonSlowOp{
			Seq:      e.Seq,
			Op:       e.Op,
			Role:     e.Role,
			KeyClass: e.KeyClass,
			Err:      e.Err,
			TotalUS:  float64(e.Total.Nanoseconds()) / 1e3,
		}
		if !e.Time.IsZero() {
			op.Time = e.Time.UTC().Format(time.RFC3339Nano)
		}
		for p, d := range e.Phases {
			if d > 0 {
				if op.PhasesUS == nil {
					op.PhasesUS = make(map[string]float64, len(e.Phases))
				}
				op.PhasesUS[obs.Phase(p).String()] = float64(d.Nanoseconds()) / 1e3
			}
		}
		out = append(out, op)
	}
	return out
}

func writeJSONReport(path string, opts options, label string, db gdprbench.DB, loadRun *stats.Run, report core.Report, runs map[gdprbench.WorkloadName]*stats.Run, allocsPerOp float64) error {
	snap := obsSnapshot(db, opts.connect != "")
	out := jsonReport{
		Engine:            label,
		Records:           opts.records,
		Operations:        opts.ops,
		Threads:           opts.threads,
		Shards:            opts.shards,
		Connect:           opts.connect,
		OpenLoop:          opts.arrivalRate > 0,
		ArrivalRate:       opts.arrivalRate,
		RSSHighWaterBytes: rssHighWaterBytes(),
		AllocsPerOp:       allocsPerOp,
		Audit:             auditBlock(db, opts),
		Kvstore:           kvstoreBlock(snap),
		Server:            serverBlock(snap),
		Slowlog:           slowlogBlock(snap),
		Load: jsonLoad{
			CompletionMS: float64(loadRun.WallTime().Microseconds()) / 1e3,
			OpsPerSec:    loadRun.Throughput(),
		},
		Space: jsonSpace{
			PersonalBytes: report.Space.PersonalBytes,
			TotalBytes:    report.Space.TotalBytes,
			Factor:        report.Space.Factor(),
		},
	}
	for _, res := range report.Results {
		run := runs[res.Workload]
		jw := jsonWorkload{
			Workload:     string(res.Workload),
			Operations:   res.Operations,
			Errors:       res.Errors,
			CompletionMS: float64(res.CompletionTime.Microseconds()) / 1e3,
			OpsPerSec:    res.Throughput,
			Ops:          make(map[string]jsonOp),
		}
		for _, op := range run.OpNames() {
			o := run.Op(op)
			jw.Ops[op] = jsonOp{
				OK:     o.OK(),
				Errors: o.Errors(),
				P50us:  float64(o.Latency.Percentile(50).Nanoseconds()) / 1e3,
				P95us:  float64(o.Latency.Percentile(95).Nanoseconds()) / 1e3,
				P99us:  float64(o.Latency.Percentile(99).Nanoseconds()) / 1e3,
				MaxUS:  float64(o.Latency.Max().Nanoseconds()) / 1e3,
			}
		}
		out.Workloads = append(out.Workloads, jw)
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

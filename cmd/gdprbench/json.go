package main

import (
	"encoding/json"
	"os"

	gdprbench "repro"
	"repro/internal/core"
	"repro/internal/stats"
)

// The -json schema: one self-describing document per timed run, built
// from the same stats.Histogram accumulators the text report uses, so
// a bench trajectory can be recorded as BENCH_*.json files and diffed
// across commits.

type jsonReport struct {
	Engine     string         `json:"engine"`
	Records    int            `json:"records"`
	Operations int            `json:"operations"`
	Threads    int            `json:"threads"`
	Shards     int            `json:"shards"`
	Connect    string         `json:"connect,omitempty"`
	Load       jsonLoad       `json:"load"`
	Workloads  []jsonWorkload `json:"workloads"`
	Space      jsonSpace      `json:"space"`
	Audit      *jsonAudit     `json:"audit,omitempty"`
	Kvstore    *jsonKvstore   `json:"kvstore,omitempty"`
}

// jsonAudit is the audit pipeline's accounting for the run. For remote
// runs the counters live server-side, so only the policy the server
// announced at handshake is recorded.
type jsonAudit struct {
	Policy        string `json:"policy"`
	Entries       int64  `json:"entries,omitempty"`
	Bytes         int64  `json:"bytes,omitempty"`
	Batches       int64  `json:"batches,omitempty"`
	Flushes       int64  `json:"flushes,omitempty"`
	MaxQueueDepth int64  `json:"max_queue_depth,omitempty"`
	Segments      int64  `json:"segments,omitempty"`
}

// jsonKvstore is the Redis-model engine's concurrency/persistence
// accounting for the run (stripe count, read- vs write-mode stripe-lock
// acquisitions, full-keyspace scans served, client allocations per
// operation, dataset and index footprints, staged-AOF group commits and
// fsyncs). Absent for the postgres model and for remote runs, whose
// engine lives server-side.
type jsonKvstore struct {
	Stripes            int     `json:"stripes"`
	FullScans          int64   `json:"full_scans"`
	ReadLocks          int64   `json:"read_locks"`
	WriteLocks         int64   `json:"write_locks"`
	AllocsPerOp        float64 `json:"allocs_per_op"`
	Bytes              int64   `json:"bytes"`
	IndexBytes         int64   `json:"index_bytes,omitempty"`
	AOFBatches         int64   `json:"aof_batches,omitempty"`
	AOFFlushes         int64   `json:"aof_flushes,omitempty"`
	AOFRewrites        int64   `json:"aof_rewrites,omitempty"`
	AOFLastRewriteUS   int64   `json:"aof_last_rewrite_us,omitempty"`
	AOFRewriteDiverted int64   `json:"aof_rewrite_diverted,omitempty"`
	ReplayOps          int64   `json:"replay_ops,omitempty"`
	ReplayUS           int64   `json:"replay_us,omitempty"`
}

type jsonLoad struct {
	CompletionMS float64 `json:"completion_ms"`
	OpsPerSec    float64 `json:"ops_per_sec"`
}

type jsonWorkload struct {
	Workload     string            `json:"workload"`
	Operations   int64             `json:"operations"`
	Errors       int64             `json:"errors"`
	CompletionMS float64           `json:"completion_ms"`
	OpsPerSec    float64           `json:"ops_per_sec"`
	Ops          map[string]jsonOp `json:"ops"`
}

type jsonOp struct {
	OK     int64   `json:"ok"`
	Errors int64   `json:"errors"`
	P50us  float64 `json:"p50_us"`
	P95us  float64 `json:"p95_us"`
	P99us  float64 `json:"p99_us"`
	MaxUS  float64 `json:"max_us"`
}

type jsonSpace struct {
	PersonalBytes int64   `json:"personal_bytes"`
	TotalBytes    int64   `json:"total_bytes"`
	Factor        float64 `json:"factor"`
}

// auditBlock derives the report's audit block from the DB under test:
// full pipeline counters for an embedded middleware, the announced
// policy alone for a remote client, nil when logging is off.
func auditBlock(db gdprbench.DB, opts options) *jsonAudit {
	if st, ok := db.(gdprbench.AuditStatser); ok {
		s, on := st.AuditStats()
		if !on {
			return nil
		}
		return &jsonAudit{
			Policy:        opts.auditPolicy.String(),
			Entries:       s.Appended,
			Bytes:         s.Bytes,
			Batches:       s.Batches,
			Flushes:       s.Flushes,
			MaxQueueDepth: s.MaxQueueDepth,
			Segments:      s.Segments,
		}
	}
	if rc, ok := db.(interface{ ServerAuditPolicy() string }); ok {
		if p := rc.ServerAuditPolicy(); p != "" {
			return &jsonAudit{Policy: p}
		}
	}
	return nil
}

// kvstoreBlock derives the report's kvstore block from the DB under
// test; nil for non-kvstore engines and remote clients. allocsPerOp is
// the process-wide heap-allocation count per workload operation,
// measured around the timed loop.
func kvstoreBlock(db gdprbench.DB, allocsPerOp float64) *jsonKvstore {
	ks, ok := db.(gdprbench.KvstoreStatser)
	if !ok {
		return nil
	}
	s, on := ks.KvstoreStats()
	if !on {
		return nil
	}
	return &jsonKvstore{
		Stripes:            s.Stripes,
		FullScans:          s.FullScans,
		ReadLocks:          s.ReadLocks,
		WriteLocks:         s.WriteLocks,
		AllocsPerOp:        allocsPerOp,
		Bytes:              s.Bytes,
		IndexBytes:         s.IndexBytes,
		AOFBatches:         s.AOFBatches,
		AOFFlushes:         s.AOFFlushes,
		AOFRewrites:        s.AOFRewrites,
		AOFLastRewriteUS:   s.AOFLastRewriteMicros,
		AOFRewriteDiverted: s.AOFRewriteDiverted,
		ReplayOps:          s.ReplayOps,
		ReplayUS:           s.ReplayMicros,
	}
}

func writeJSONReport(path string, opts options, label string, db gdprbench.DB, loadRun *stats.Run, report core.Report, runs map[gdprbench.WorkloadName]*stats.Run, allocsPerOp float64) error {
	out := jsonReport{
		Engine:     label,
		Records:    opts.records,
		Operations: opts.ops,
		Threads:    opts.threads,
		Shards:     opts.shards,
		Connect:    opts.connect,
		Audit:      auditBlock(db, opts),
		Kvstore:    kvstoreBlock(db, allocsPerOp),
		Load: jsonLoad{
			CompletionMS: float64(loadRun.WallTime().Microseconds()) / 1e3,
			OpsPerSec:    loadRun.Throughput(),
		},
		Space: jsonSpace{
			PersonalBytes: report.Space.PersonalBytes,
			TotalBytes:    report.Space.TotalBytes,
			Factor:        report.Space.Factor(),
		},
	}
	for _, res := range report.Results {
		run := runs[res.Workload]
		jw := jsonWorkload{
			Workload:     string(res.Workload),
			Operations:   res.Operations,
			Errors:       res.Errors,
			CompletionMS: float64(res.CompletionTime.Microseconds()) / 1e3,
			OpsPerSec:    res.Throughput,
			Ops:          make(map[string]jsonOp),
		}
		for _, op := range run.OpNames() {
			o := run.Op(op)
			jw.Ops[op] = jsonOp{
				OK:     o.OK(),
				Errors: o.Errors(),
				P50us:  float64(o.Latency.Percentile(50).Nanoseconds()) / 1e3,
				P95us:  float64(o.Latency.Percentile(95).Nanoseconds()) / 1e3,
				P99us:  float64(o.Latency.Percentile(99).Nanoseconds()) / 1e3,
				MaxUS:  float64(o.Latency.Max().Nanoseconds()) / 1e3,
			}
		}
		out.Workloads = append(out.Workloads, jw)
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

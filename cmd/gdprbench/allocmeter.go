package main

import "runtime"

// allocMeter attributes heap allocations to the timed workload loops
// alone. Each measured section is bracketed by its own ReadMemStats
// pair, so load-phase and reporting allocations never leak into the
// -json allocs_per_op figure (they did when a single whole-run delta
// covered everything between load and report).
type allocMeter struct {
	mallocs uint64
	ops     int64
}

// measure runs one timed section and charges its allocations plus the
// operation count it reports to the meter. A failed section charges
// nothing: a half-run workload would skew the ratio.
func (m *allocMeter) measure(section func() (ops int64, err error)) error {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	ops, err := section()
	runtime.ReadMemStats(&after)
	if err != nil {
		return err
	}
	m.mallocs += after.Mallocs - before.Mallocs
	m.ops += ops
	return nil
}

// allocsPerOp reports heap allocations per measured operation (0 before
// any successful section).
func (m *allocMeter) allocsPerOp() float64 {
	if m.ops == 0 {
		return 0
	}
	return float64(m.mallocs) / float64(m.ops)
}

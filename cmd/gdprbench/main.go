// Command gdprbench loads a personal-data dataset into one of the two
// engines and runs the Table 2a workloads against it, printing the
// §4.2.3 metrics (completion time per workload, correctness when
// requested, and the space-overhead factor). With -shards N the engine is
// hash-partitioned into N shards behind the same compliance middleware;
// attribute queries scatter-gather across shards in parallel.
//
// The benchmark also runs client/server: -serve turns the process into a
// network datastore (like cmd/gdprserver), and -connect points the whole
// benchmark stack at such a server over the pipelined wire protocol —
// same workloads, same oracle, compliance enforced server-side.
//
// Examples:
//
//	gdprbench -engine redis -records 10000 -ops 2000
//	gdprbench -engine postgres -index -workloads controller,customer
//	gdprbench -engine redis -validate
//	gdprbench -engine redis -shards 4 -records 20000
//	gdprbench -engine redis -secondarydist uniform -workloads processor
//	gdprbench -serve 127.0.0.1:7946 -engine redis
//	gdprbench -connect 127.0.0.1:7946 -records 10000 -ops 2000 -json out.json
//
// A run exits non-zero if any workload records operation errors, so CI
// cannot mistake a failing run for a passing one.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	gdprbench "repro"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stats"
)

type options struct {
	engine      string
	records     int
	ops         int
	threads     int
	dataSize    int
	shards      int
	seed        int64
	dir         string
	workloads   string
	secondary   *gdprbench.Dist
	indexed     bool
	baseline    bool
	validate    bool
	serve       string
	frozen      bool
	connect     string
	token       string
	jsonPath    string
	arrivalRate float64
	auditPolicy gdprbench.AuditPolicy
	kvstripes   int
	tuning      gdprbench.Tuning
	slowlog     time.Duration
	cpuProfile  string
	memProfile  string
}

// engineFlags are meaningless with -connect (the server owns the
// engine); benchFlags are meaningless with -serve (a server runs no
// workloads). Naming each set keeps the rejection messages exact
// instead of silently dropping misplaced flags.
var engineFlags = map[string]bool{
	"engine": true, "shards": true, "index": true, "baseline": true, "dir": true,
	"auditpolicy": true, "kvstripes": true,
	"aofrewrite-pct": true, "walcheckpoint": true, "auditretain": true,
	"slowlog-threshold": true,
}

var benchFlags = map[string]bool{
	"records": true, "ops": true, "threads": true, "datasize": true, "seed": true,
	"workloads": true, "secondarydist": true, "validate": true, "json": true,
	"arrival-rate": true, "cpuprofile": true, "memprofile": true,
}

func main() {
	var (
		engine    = flag.String("engine", "redis", "engine: redis | postgres")
		records   = flag.Int("records", 10_000, "personal-data records to load")
		ops       = flag.Int("ops", 2_000, "operations per workload")
		threads   = flag.Int("threads", 8, "client threads")
		dataSize  = flag.Int("datasize", 10, "personal-data payload bytes per record")
		seed      = flag.Int64("seed", 1, "random seed")
		dir       = flag.String("dir", "", "data directory (default: a temp dir)")
		workloads = flag.String("workloads", "controller,customer,processor,regulator", "comma-separated workloads")
		indexed   = flag.Bool("index", false, "build secondary indexes on all metadata fields (postgres: per-column B-trees; redis: inverted metadata + ordered expiry indexes)")
		baseline  = flag.Bool("baseline", false, "disable all compliance features (no-security baseline)")
		validate  = flag.Bool("validate", false, "run the single-threaded correctness pass instead of the timed run")
		shards    = flag.Int("shards", 1, "hash-partition the engine into N shards (scatter-gather attribute queries)")
		secondary = flag.String("secondarydist", "", "override the minority-query attribute distribution for timed runs: uniform | zipf (default: each workload's Table 2a distribution)")
		serve     = flag.String("serve", "", "serve the configured engine on this TCP address instead of running workloads")
		frozen    = flag.Bool("frozenclock", false, "with -serve: run engines on a simulated clock frozen at the epoch with expiry daemons off (required for -connect -validate clients)")
		connect   = flag.String("connect", "", "run the benchmark against a gdprserver at this TCP address instead of an embedded engine")
		token     = flag.String("token", "", "auth token for -serve / -connect")
		jsonPath  = flag.String("json", "", "write machine-readable results (per-workload completion, ops/s, per-op p50/p95/p99) to this file")
		arrival   = flag.Float64("arrival-rate", 0, "open-loop mode: issue operations on a fixed schedule at this many ops/sec per workload, measuring latency from each operation's scheduled arrival (coordinated-omission-free); 0 = closed loop")
		auditPol  = flag.String("auditpolicy", gdprbench.DefaultAuditPolicy.String(), "audit append pipeline: sync (inline, the legacy baseline) | batched (group-committed, callers wait) | async (fire-and-forget, bounded-queue backpressure)")
		kvstripes = flag.Int("kvstripes", 0, "redis engine: partition each kvstore into N lock stripes with a staged group-commit AOF (0 = the Redis-faithful single-mutex baseline)")
		aofPct    = flag.Int("aofrewrite-pct", 0, "redis engine: background-rewrite the AOF once it grows this percent past its post-rewrite size (Redis auto-aof-rewrite-percentage; 100 = rewrite at 2x, 0 = never)")
		walCkpt   = flag.Int64("walcheckpoint", 0, "postgres engine: checkpoint and truncate the WAL once it exceeds this many bytes (0 = never)")
		auditKeep = flag.Duration("auditretain", 0, "compact audit-trail segments older than this window, e.g. 720h (0 = keep all history)")
		slowlog   = flag.Duration("slowlog-threshold", 0, "record every operation at least this slow in the slowlog with per-phase latency attribution, reported in -json (e.g. 10ms; 0 = off); with -connect, set it on the server instead")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProf   = flag.String("memprofile", "", "write a heap/allocation profile to this file when the run ends")
	)
	flag.Parse()

	secondaryDist, err := parseDist(*secondary)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gdprbench:", err)
		os.Exit(1)
	}
	policy, err := gdprbench.ParseAuditPolicy(*auditPol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gdprbench:", err)
		os.Exit(1)
	}
	opts := options{
		engine: *engine, records: *records, ops: *ops, threads: *threads,
		dataSize: *dataSize, shards: *shards, seed: *seed, dir: *dir,
		workloads: *workloads, secondary: secondaryDist,
		indexed: *indexed, baseline: *baseline, validate: *validate,
		serve: *serve, frozen: *frozen, connect: *connect, token: *token, jsonPath: *jsonPath,
		arrivalRate: *arrival,
		auditPolicy: policy, kvstripes: *kvstripes, slowlog: *slowlog,
		tuning: gdprbench.Tuning{
			AOFRewritePct:      *aofPct,
			WALCheckpointBytes: *walCkpt,
			AuditRetention:     *auditKeep,
		},
		cpuProfile: *cpuProf, memProfile: *memProf,
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "gdprbench:", err)
		os.Exit(1)
	}
}

// parseDist maps the -secondarydist flag value to a distribution; nil
// means "keep each workload's Table 2a default".
func parseDist(s string) (*gdprbench.Dist, error) {
	switch s {
	case "":
		return nil, nil
	case "uniform":
		d := gdprbench.DistUniform
		return &d, nil
	case "zipf":
		d := gdprbench.DistZipf
		return &d, nil
	default:
		return nil, fmt.Errorf("-secondarydist must be uniform or zipf, got %q", s)
	}
}

func run(opts options) error {
	if opts.serve != "" && opts.connect != "" {
		return fmt.Errorf("-serve and -connect are mutually exclusive")
	}
	if opts.connect != "" {
		var misplaced []string
		flag.Visit(func(f *flag.Flag) {
			if engineFlags[f.Name] {
				misplaced = append(misplaced, "-"+f.Name)
			}
		})
		if len(misplaced) > 0 {
			return fmt.Errorf("%s configure the engine host; with -connect, set them on the server instead", strings.Join(misplaced, ", "))
		}
	}
	if opts.serve != "" {
		var misplaced []string
		flag.Visit(func(f *flag.Flag) {
			if benchFlags[f.Name] {
				misplaced = append(misplaced, "-"+f.Name)
			}
		})
		if len(misplaced) > 0 {
			return fmt.Errorf("%s drive workload runs; a -serve process only hosts the engine — run them from a -connect client", strings.Join(misplaced, ", "))
		}
	}
	if opts.frozen && opts.serve == "" {
		return fmt.Errorf("-frozenclock only applies to -serve")
	}
	if opts.shards < 1 {
		return fmt.Errorf("-shards must be >= 1")
	}
	if opts.kvstripes < 0 {
		return fmt.Errorf("-kvstripes must be >= 0")
	}
	if opts.kvstripes > 0 && opts.engine != "redis" {
		return fmt.Errorf("-kvstripes applies to the redis engine only")
	}
	if opts.tuning.AOFRewritePct < 0 || opts.tuning.WALCheckpointBytes < 0 || opts.tuning.AuditRetention < 0 {
		return fmt.Errorf("-aofrewrite-pct, -walcheckpoint and -auditretain must be >= 0")
	}
	if opts.tuning.AOFRewritePct > 0 && opts.engine != "redis" {
		return fmt.Errorf("-aofrewrite-pct applies to the redis engine only")
	}
	if opts.tuning.WALCheckpointBytes > 0 && opts.engine != "postgres" {
		return fmt.Errorf("-walcheckpoint applies to the postgres engine only")
	}
	if opts.slowlog < 0 {
		return fmt.Errorf("-slowlog-threshold must be >= 0")
	}
	if opts.arrivalRate < 0 {
		return fmt.Errorf("-arrival-rate must be >= 0")
	}
	// Arm the process-wide registry before any engine opens: embedded
	// runs and -serve both report there.
	obs.Default().SetSlowlogThreshold(opts.slowlog)
	comp := gdprbench.FullCompliance()
	if opts.baseline {
		comp = gdprbench.NoCompliance()
	}
	comp.MetadataIndexing = opts.indexed

	if opts.serve != "" {
		// The one serve bootstrap shared with cmd/gdprserver (temp-dir
		// handling, frozen clock, drain on SIGINT/SIGTERM).
		return gdprbench.ServeEngine(opts.serve, opts.engine, opts.shards, opts.dir, opts.token, comp, opts.frozen, opts.auditPolicy, opts.kvstripes, opts.tuning)
	}
	if opts.dir == "" {
		var err error
		opts.dir, err = os.MkdirTemp("", "gdprbench-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(opts.dir)
	}

	cfg := gdprbench.Config{
		Records: opts.records, Operations: opts.ops, Threads: opts.threads,
		DataSize: opts.dataSize, Seed: opts.seed,
	}

	var names []gdprbench.WorkloadName
	for _, w := range strings.Split(opts.workloads, ",") {
		w = strings.TrimSpace(w)
		if w != "" {
			names = append(names, gdprbench.WorkloadName(w))
		}
	}

	stopProfiles, err := startProfiles(opts)
	if err != nil {
		return err
	}
	if opts.validate {
		err = runValidate(opts, comp, cfg, names)
	} else {
		err = runTimed(opts, comp, cfg, names)
	}
	if perr := stopProfiles(); perr != nil && err == nil {
		err = perr
	}
	return err
}

// startProfiles arms -cpuprofile / -memprofile; the returned stop
// function finalizes both files once the run ends.
func startProfiles(opts options) (func() error, error) {
	var cpu *os.File
	if opts.cpuProfile != "" {
		f, err := os.Create(opts.cpuProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpu = f
	}
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return err
			}
		}
		if opts.memProfile != "" {
			f, err := os.Create(opts.memProfile)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // settle the heap so in-use numbers reflect live data
			return pprof.WriteHeapProfile(f)
		}
		return nil
	}, nil
}

// openBench returns the DB under test: a remote client for -connect, an
// embedded engine otherwise, plus its report label.
func openBench(opts options, comp gdprbench.Compliance, clk clock.Clock, disableDaemons bool) (gdprbench.DB, string, error) {
	if opts.connect != "" {
		db, err := gdprbench.OpenRemote(gdprbench.RemoteConfig{
			Addr: opts.connect, Token: opts.token, ConnsPerRole: max(2, opts.threads/2),
		})
		return db, "remote(" + opts.connect + ")", err
	}
	db, err := open(opts, comp, clk, disableDaemons)
	label := opts.engine
	if opts.shards > 1 {
		label = fmt.Sprintf("%s x%d shards", opts.engine, opts.shards)
	}
	return db, label, err
}

func runValidate(opts options, comp gdprbench.Compliance, cfg gdprbench.Config, names []gdprbench.WorkloadName) error {
	if opts.secondary != nil {
		// The oracle pass replays its own deterministic script, not a
		// Mix, so a distribution override would be silently ignored.
		return fmt.Errorf("-secondarydist applies to timed runs only, not -validate")
	}
	if opts.jsonPath != "" {
		// The JSON report carries timed-run latency histograms; failing
		// loudly beats a CI script reading a file that was never written.
		return fmt.Errorf("-json applies to timed runs only, not -validate")
	}
	if opts.arrivalRate > 0 {
		// The oracle replays a deterministic script; pacing it open-loop
		// would change nothing but the wall clock.
		return fmt.Errorf("-arrival-rate applies to timed runs only, not -validate")
	}
	if opts.connect != "" && len(names) != 1 {
		// The oracle needs a freshly loaded store per workload; a remote
		// server cannot be reopened from here.
		return fmt.Errorf("-connect -validate checks one workload per freshly started server (-frozenclock); pass exactly one via -workloads")
	}
	var total gdprbench.CorrectnessReport
	for _, name := range names {
		sim := clock.NewSim(time.Time{})
		var db gdprbench.DB
		var err error
		if opts.connect != "" {
			db, _, err = openBench(opts, comp, sim, true)
		} else {
			var sub string
			sub, err = os.MkdirTemp(opts.dir, "validate-*")
			if err != nil {
				return err
			}
			subOpts := opts
			subOpts.dir = sub
			db, err = open(subOpts, comp, sim, true)
		}
		if err != nil {
			return err
		}
		ds, _, err := core.Load(db, cfg, sim)
		if err != nil {
			db.Close()
			return err
		}
		rep, err := core.Validate(db, ds, name, sim, comp.AccessControl)
		db.Close()
		if err != nil {
			return err
		}
		fmt.Printf("workload %-10s correctness %.2f%% (%d/%d)\n", name, rep.Score(), rep.Matched, rep.Total)
		total.Total += rep.Total
		total.Matched += rep.Matched
	}
	fmt.Printf("cumulative correctness %.2f%% (%d/%d)\n", total.Score(), total.Matched, total.Total)
	return nil
}

func runTimed(opts options, comp gdprbench.Compliance, cfg gdprbench.Config, names []gdprbench.WorkloadName) error {
	db, label, err := openBench(opts, comp, nil, false)
	if err != nil {
		return err
	}
	defer db.Close()

	if opts.connect != "" {
		// The server owns the compliance configuration; printing the
		// client-side default would misattribute the results.
		fmt.Printf("loading %d records into %s (compliance: server-side)...\n", opts.records, label)
	} else {
		fmt.Printf("loading %d records into %s (compliance: %s)...\n", opts.records, label, comp)
	}
	ds, loadRun, err := gdprbench.Load(db, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("load: %v (%.0f inserts/s)\n", loadRun.WallTime().Round(time.Millisecond), loadRun.Throughput())

	report := core.Report{Engine: label, Records: opts.records}
	runs := make(map[gdprbench.WorkloadName]*stats.Run, len(names))
	// Heap allocations per workload operation (the read-path allocation
	// budget the pooled codec and copy-out paths are accountable to),
	// metered tightly around each timed loop — never the load phase or
	// the reporting between workloads.
	var meter allocMeter
	for _, name := range names {
		var run *gdprbench.RunStats
		err := meter.measure(func() (int64, error) {
			var err error
			switch {
			case opts.secondary != nil:
				mix, ok := gdprbench.Workloads()[name]
				if !ok {
					return 0, fmt.Errorf("unknown workload %q", name)
				}
				mix.SecondaryDist = *opts.secondary
				if opts.arrivalRate > 0 {
					run, err = gdprbench.RunMixOpenLoop(db, ds, mix, opts.arrivalRate)
				} else {
					run, err = gdprbench.RunMix(db, ds, mix)
				}
			case opts.arrivalRate > 0:
				run, err = gdprbench.RunOpenLoop(db, ds, name, opts.arrivalRate)
			default:
				run, err = gdprbench.Run(db, ds, name)
			}
			if err != nil {
				return 0, err
			}
			return run.TotalOps(), nil
		})
		if err != nil {
			return fmt.Errorf("workload %s: %w", name, err)
		}
		runs[name] = run
		report.Results = append(report.Results, core.WorkloadResult{
			Workload:       name,
			Operations:     run.TotalOps(),
			Errors:         run.TotalErrors(),
			CompletionTime: run.WallTime(),
			Throughput:     run.Throughput(),
			Correctness:    -1,
		})
	}
	allocsPerOp := meter.allocsPerOp()

	space, err := db.SpaceUsage()
	if err != nil {
		return err
	}
	report.Space = space
	fmt.Print(report)

	if opts.jsonPath != "" {
		if err := writeJSONReport(opts.jsonPath, opts, label, db, loadRun, report, runs, allocsPerOp); err != nil {
			return fmt.Errorf("-json: %w", err)
		}
		fmt.Printf("wrote %s\n", opts.jsonPath)
	}

	// A run that recorded operation errors is a failed run: surface it
	// in the exit code so automation cannot mistake it for a pass.
	var totalErrs int64
	for _, res := range report.Results {
		totalErrs += res.Errors
	}
	if totalErrs > 0 {
		return fmt.Errorf("%d operation error(s) recorded across workloads", totalErrs)
	}
	return nil
}

// open builds a client: the plain stubs for one shard, the scatter-gather
// router behind the same middleware for several.
func open(opts options, comp gdprbench.Compliance, clk clock.Clock, disableDaemons bool) (gdprbench.DB, error) {
	return gdprbench.OpenEngine(opts.engine, opts.shards, opts.dir, comp, clk, disableDaemons, opts.auditPolicy, opts.kvstripes, opts.tuning)
}

// Command gdprbench loads a personal-data dataset into one of the two
// engines and runs the Table 2a workloads against it, printing the
// §4.2.3 metrics (completion time per workload, correctness when
// requested, and the space-overhead factor). With -shards N the engine is
// hash-partitioned into N shards behind the same compliance middleware;
// attribute queries scatter-gather across shards in parallel.
//
// Examples:
//
//	gdprbench -engine redis -records 10000 -ops 2000
//	gdprbench -engine postgres -index -workloads controller,customer
//	gdprbench -engine redis -index -records 20000
//	gdprbench -engine redis -validate
//	gdprbench -engine redis -shards 4 -records 20000
//	gdprbench -engine redis -secondarydist uniform -workloads processor
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	gdprbench "repro"
	"repro/internal/clock"
	"repro/internal/core"
)

func main() {
	var (
		engine    = flag.String("engine", "redis", "engine: redis | postgres")
		records   = flag.Int("records", 10_000, "personal-data records to load")
		ops       = flag.Int("ops", 2_000, "operations per workload")
		threads   = flag.Int("threads", 8, "client threads")
		dataSize  = flag.Int("datasize", 10, "personal-data payload bytes per record")
		seed      = flag.Int64("seed", 1, "random seed")
		dir       = flag.String("dir", "", "data directory (default: a temp dir)")
		workloads = flag.String("workloads", "controller,customer,processor,regulator", "comma-separated workloads")
		indexed   = flag.Bool("index", false, "build secondary indexes on all metadata fields (postgres: per-column B-trees; redis: inverted metadata + ordered expiry indexes)")
		baseline  = flag.Bool("baseline", false, "disable all compliance features (no-security baseline)")
		validate  = flag.Bool("validate", false, "run the single-threaded correctness pass instead of the timed run")
		shards    = flag.Int("shards", 1, "hash-partition the engine into N shards (scatter-gather attribute queries)")
		secondary = flag.String("secondarydist", "", "override the minority-query attribute distribution for timed runs: uniform | zipf (default: each workload's Table 2a distribution)")
	)
	flag.Parse()

	secondaryDist, err := parseDist(*secondary)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gdprbench:", err)
		os.Exit(1)
	}
	if err := run(*engine, *records, *ops, *threads, *dataSize, *shards, *seed, *dir, *workloads, secondaryDist, *indexed, *baseline, *validate); err != nil {
		fmt.Fprintln(os.Stderr, "gdprbench:", err)
		os.Exit(1)
	}
}

// parseDist maps the -secondarydist flag value to a distribution; nil
// means "keep each workload's Table 2a default".
func parseDist(s string) (*gdprbench.Dist, error) {
	switch s {
	case "":
		return nil, nil
	case "uniform":
		d := gdprbench.DistUniform
		return &d, nil
	case "zipf":
		d := gdprbench.DistZipf
		return &d, nil
	default:
		return nil, fmt.Errorf("-secondarydist must be uniform or zipf, got %q", s)
	}
}

func run(engine string, records, ops, threads, dataSize, shards int, seed int64, dir, workloadList string, secondaryDist *gdprbench.Dist, indexed, baseline, validate bool) error {
	if shards < 1 {
		return fmt.Errorf("-shards must be >= 1")
	}
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "gdprbench-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}
	comp := gdprbench.FullCompliance()
	if baseline {
		comp = gdprbench.NoCompliance()
	}
	comp.MetadataIndexing = indexed

	cfg := gdprbench.Config{
		Records: records, Operations: ops, Threads: threads,
		DataSize: dataSize, Seed: seed,
	}

	var names []gdprbench.WorkloadName
	for _, w := range strings.Split(workloadList, ",") {
		w = strings.TrimSpace(w)
		if w != "" {
			names = append(names, gdprbench.WorkloadName(w))
		}
	}

	if validate {
		if secondaryDist != nil {
			// The oracle pass replays its own deterministic script, not a
			// Mix, so a distribution override would be silently ignored.
			return fmt.Errorf("-secondarydist applies to timed runs only, not -validate")
		}
		sim := clock.NewSim(time.Time{})
		var total gdprbench.CorrectnessReport
		for _, name := range names {
			sub, err := os.MkdirTemp(dir, "validate-*")
			if err != nil {
				return err
			}
			db, err := openIn(engine, shards, sub, comp, sim)
			if err != nil {
				return err
			}
			ds, _, err := core.Load(db, cfg, sim)
			if err != nil {
				db.Close()
				return err
			}
			rep, err := core.Validate(db, ds, name, sim, comp.AccessControl)
			db.Close()
			if err != nil {
				return err
			}
			fmt.Printf("workload %-10s correctness %.2f%% (%d/%d)\n", name, rep.Score(), rep.Matched, rep.Total)
			total.Total += rep.Total
			total.Matched += rep.Matched
		}
		fmt.Printf("cumulative correctness %.2f%% (%d/%d)\n", total.Score(), total.Matched, total.Total)
		return nil
	}

	db, err := open(engine, shards, dir, comp, nil, false)
	if err != nil {
		return err
	}
	defer db.Close()

	label := engine
	if shards > 1 {
		label = fmt.Sprintf("%s x%d shards", engine, shards)
	}
	fmt.Printf("loading %d records into %s (compliance: %s)...\n", records, label, comp)
	ds, loadRun, err := gdprbench.Load(db, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("load: %v (%.0f inserts/s)\n", loadRun.WallTime().Round(time.Millisecond), loadRun.Throughput())

	report := core.Report{Engine: label, Records: records}
	for _, name := range names {
		var run *gdprbench.RunStats
		if secondaryDist != nil {
			mix, ok := gdprbench.Workloads()[name]
			if !ok {
				return fmt.Errorf("unknown workload %q", name)
			}
			mix.SecondaryDist = *secondaryDist
			run, err = gdprbench.RunMix(db, ds, mix)
		} else {
			run, err = gdprbench.Run(db, ds, name)
		}
		if err != nil {
			return fmt.Errorf("workload %s: %w", name, err)
		}
		report.Results = append(report.Results, core.WorkloadResult{
			Workload:       name,
			Operations:     run.TotalOps(),
			Errors:         run.TotalErrors(),
			CompletionTime: run.WallTime(),
			Throughput:     run.Throughput(),
			Correctness:    -1,
		})
	}
	space, err := db.SpaceUsage()
	if err != nil {
		return err
	}
	report.Space = space
	fmt.Print(report)
	return nil
}

// open builds a client: the plain stubs for one shard, the scatter-gather
// router behind the same middleware for several.
func open(engine string, shards int, dir string, comp gdprbench.Compliance, clk clock.Clock, disableDaemons bool) (gdprbench.DB, error) {
	if shards > 1 {
		return gdprbench.OpenSharded(engine, shards, dir, comp, clk, disableDaemons)
	}
	switch engine {
	case "redis":
		return gdprbench.OpenRedis(gdprbench.RedisConfig{
			Dir: dir, Compliance: comp, Clock: clk, DisableBackgroundExpiry: disableDaemons,
		})
	case "postgres":
		return gdprbench.OpenPostgres(gdprbench.PostgresConfig{
			Dir: dir, Compliance: comp, Clock: clk, DisableTTLDaemon: disableDaemons,
		})
	default:
		return nil, fmt.Errorf("unknown engine %q", engine)
	}
}

func openIn(engine string, shards int, dir string, comp gdprbench.Compliance, clk clock.Clock) (gdprbench.DB, error) {
	return open(engine, shards, dir, comp, clk, true)
}

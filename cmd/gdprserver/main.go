// Command gdprserver serves one of the two engine models (optionally
// hash-sharded) as a network GDPR datastore speaking the pipelined wire
// protocol. Compliance — Figure 1 access control, metadata redaction,
// audit logging, strict validation — runs server-side behind the
// listener, so remote clients cannot bypass it; connections are bound
// to one GDPR role at handshake.
//
// Examples:
//
//	gdprserver -addr 127.0.0.1:7946 -engine redis
//	gdprserver -addr :7946 -engine postgres -index -shards 4 -token s3cret
//	gdprserver -frozenclock      # simulated clock + no daemons, for -validate clients
//
// Point clients at it with:
//
//	gdprbench -connect 127.0.0.1:7946 -records 10000 -ops 2000
//
// SIGINT/SIGTERM trigger a graceful drain: in-flight requests finish
// and their responses flush before the process exits.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // -pprofaddr: live CPU/heap profiles of the serving hot path
	"os"

	gdprbench "repro"
	"repro/internal/obs"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7946", "TCP listen address")
		engine      = flag.String("engine", "redis", "engine: redis | postgres")
		shards      = flag.Int("shards", 1, "hash-partition the engine into N shards")
		dir         = flag.String("dir", "", "data directory (default: a temp dir)")
		indexed     = flag.Bool("index", false, "build secondary indexes on all metadata fields")
		baseline    = flag.Bool("baseline", false, "disable all compliance features (no-security baseline)")
		token       = flag.String("token", "", "shared auth token clients must present")
		frozenclock = flag.Bool("frozenclock", false, "run engines on a simulated clock frozen at the epoch with expiry daemons off (required for gdprbench -connect -validate)")
		auditPol    = flag.String("auditpolicy", gdprbench.DefaultAuditPolicy.String(), "audit append pipeline: sync (inline, the legacy baseline) | batched (group-committed, callers wait) | async (fire-and-forget, bounded-queue backpressure)")
		kvstripes   = flag.Int("kvstripes", 0, "redis engine: partition each kvstore into N lock stripes with a staged group-commit AOF (0 = the Redis-faithful single-mutex baseline)")
		aofPct      = flag.Int("aofrewrite-pct", 0, "redis engine: background-rewrite the AOF once it grows this percent past its post-rewrite size (Redis auto-aof-rewrite-percentage; 100 = rewrite at 2x, 0 = never)")
		walCkpt     = flag.Int64("walcheckpoint", 0, "postgres engine: checkpoint and truncate the WAL once it exceeds this many bytes (0 = never)")
		auditKeep   = flag.Duration("auditretain", 0, "compact audit-trail segments older than this window, e.g. 720h (0 = keep all history)")
		pprofAddr   = flag.String("pprofaddr", "", "serve net/http/pprof plus /metrics (Prometheus text) and /healthz on this TCP address (e.g. 127.0.0.1:6060)")
		slowlog     = flag.Duration("slowlog-threshold", 0, "record every operation at least this slow in the slowlog, with per-phase latency attribution (e.g. 10ms; 0 = off); forces every-op tracing while armed")
	)
	flag.Parse()

	if *slowlog < 0 {
		fmt.Fprintln(os.Stderr, "gdprserver: -slowlog-threshold must be >= 0")
		os.Exit(1)
	}
	obs.Default().SetSlowlogThreshold(*slowlog)
	if *pprofAddr != "" {
		// The introspection surface shares the pprof mux: one debug
		// address serves profiles, metrics and liveness.
		introspect := obs.Default().Handler()
		http.Handle("/metrics", introspect)
		http.Handle("/healthz", introspect)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "gdprserver: pprof:", err)
			}
		}()
	}
	tun := gdprbench.Tuning{AOFRewritePct: *aofPct, WALCheckpointBytes: *walCkpt, AuditRetention: *auditKeep}
	if err := run(*addr, *engine, *shards, *dir, *token, *auditPol, *indexed, *baseline, *frozenclock, *kvstripes, tun); err != nil {
		fmt.Fprintln(os.Stderr, "gdprserver:", err)
		os.Exit(1)
	}
}

func run(addr, engine string, shards int, dir, token, auditPol string, indexed, baseline, frozenclock bool, kvstripes int, tun gdprbench.Tuning) error {
	policy, err := gdprbench.ParseAuditPolicy(auditPol)
	if err != nil {
		return err
	}
	if kvstripes < 0 {
		return fmt.Errorf("-kvstripes must be >= 0")
	}
	if kvstripes > 0 && engine != "redis" {
		return fmt.Errorf("-kvstripes applies to the redis engine only")
	}
	if tun.AOFRewritePct < 0 || tun.WALCheckpointBytes < 0 || tun.AuditRetention < 0 {
		return fmt.Errorf("-aofrewrite-pct, -walcheckpoint and -auditretain must be >= 0")
	}
	if tun.AOFRewritePct > 0 && engine != "redis" {
		return fmt.Errorf("-aofrewrite-pct applies to the redis engine only")
	}
	if tun.WALCheckpointBytes > 0 && engine != "postgres" {
		return fmt.Errorf("-walcheckpoint applies to the postgres engine only")
	}
	comp := gdprbench.FullCompliance()
	if baseline {
		comp = gdprbench.NoCompliance()
	}
	comp.MetadataIndexing = indexed
	return gdprbench.ServeEngine(addr, engine, shards, dir, token, comp, frozenclock, policy, kvstripes, tun)
}

package gdprbench

// Tests of the public API: the end-to-end flows a downstream user relies
// on, exercised exactly as the examples and README show them.

import (
	"strings"
	"testing"
	"time"
)

func openTestRedis(t *testing.T) DB {
	t.Helper()
	db, err := OpenRedis(RedisConfig{
		Dir:        t.TempDir(),
		Compliance: FullCompliance(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func openTestPostgres(t *testing.T, indexed bool) DB {
	t.Helper()
	comp := FullCompliance()
	comp.MetadataIndexing = indexed
	db, err := OpenPostgres(PostgresConfig{
		Dir:        t.TempDir(),
		Compliance: comp,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func testRecord(key, user string) Record {
	return Record{
		Key:  key,
		Data: "payload-" + key,
		Meta: Metadata{
			Purposes: []string{"service"},
			Expiry:   time.Now().Add(time.Hour),
			User:     user,
			Source:   "test",
		},
	}
}

func TestPublicAPILifecycle(t *testing.T) {
	for _, mk := range []func(*testing.T) DB{
		openTestRedis,
		func(t *testing.T) DB { return openTestPostgres(t, true) },
	} {
		db := mk(t)
		controller := ControllerActor()
		if err := db.CreateRecord(controller, testRecord("k1", "neo")); err != nil {
			t.Fatal(err)
		}
		if err := db.CreateRecord(controller, testRecord("k2", "neo")); err != nil {
			t.Fatal(err)
		}

		neo := CustomerActor("neo")
		got, err := db.ReadData(neo, ByUser("neo"))
		if err != nil || len(got) != 2 {
			t.Fatalf("read = %d records, err=%v", len(got), err)
		}

		n, err := db.UpdateData(neo, "k1", "rectified")
		if err != nil || n != 1 {
			t.Fatalf("update = %d, %v", n, err)
		}
		got, _ = db.ReadData(neo, ByKey("k1"))
		if got[0].Data != "rectified" {
			t.Fatalf("rectification lost: %q", got[0].Data)
		}

		n, err = db.UpdateMetadata(neo, ByKey("k2"), Delta{
			Attr: AttrObjection, Op: DeltaAdd, Values: []string{"service"},
		})
		if err != nil || n != 1 {
			t.Fatalf("objection = %d, %v", n, err)
		}
		proc := ProcessorActor("p1", "service")
		visible, err := db.ReadData(proc, ByPurpose("service"))
		if err != nil {
			t.Fatal(err)
		}
		if len(visible) != 1 || visible[0].Key != "k1" {
			t.Fatalf("processor sees %v", visible)
		}

		n, err = db.DeleteRecord(neo, ByKey("k1"))
		if err != nil || n != 1 {
			t.Fatalf("delete = %d, %v", n, err)
		}
		present, err := db.VerifyDeletion(RegulatorActor(), []string{"k1"})
		if err != nil || present != 0 {
			t.Fatalf("verify = %d, %v", present, err)
		}

		logs, err := db.GetSystemLogs(RegulatorActor(), time.Now().Add(-time.Minute), time.Now())
		if err != nil || len(logs) == 0 {
			t.Fatalf("logs = %d, %v", len(logs), err)
		}
	}
}

func TestPublicAPILoadRunValidate(t *testing.T) {
	db := openTestRedis(t)
	cfg := Config{Records: 300, Operations: 150, Threads: 4, Seed: 5}
	ds, loadRun, err := Load(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if loadRun.TotalOps() != 300 {
		t.Fatalf("load ops = %d", loadRun.TotalOps())
	}
	for _, name := range WorkloadNames() {
		run, err := Run(db, ds, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if run.TotalErrors() != 0 {
			t.Fatalf("%s errors:\n%s", name, run.Summary())
		}
		if run.WallTime() <= 0 {
			t.Fatalf("%s has no completion time", name)
		}
	}
	space, err := db.SpaceUsage()
	if err != nil {
		t.Fatal(err)
	}
	if space.Factor() <= 1 {
		t.Fatalf("space factor = %v", space.Factor())
	}
}

func TestPublicAPIValidateScoresFreshStore(t *testing.T) {
	// Validate needs a non-advancing clock and a store loaded under it;
	// the exported helper wires the sim clock internally, so load through
	// internal plumbing is not needed — a freshly loaded store plus
	// Validate on a paused clock still scores 100% because record TTLs
	// are in the future either way.
	db := openTestPostgres(t, false)
	cfg := Config{Records: 200, Operations: 100, Threads: 1, Seed: 5}
	ds, _, err := Load(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Validate(db, ds, Customer, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Score() < 99 {
		t.Fatalf("correctness = %.2f%%\n%s", rep.Score(), strings.Join(rep.Mismatches, "\n"))
	}
}

func TestWorkloadsExported(t *testing.T) {
	ws := Workloads()
	if len(ws) != 4 {
		t.Fatalf("workloads = %d", len(ws))
	}
	if len(WorkloadNames()) != 4 {
		t.Fatal("names")
	}
	if _, ok := ws[Controller]; !ok {
		t.Fatal("controller missing")
	}
}

func TestExperimentRegistryExported(t *testing.T) {
	ids := Experiments()
	if len(ids) != 20 {
		t.Fatalf("experiments = %v", ids)
	}
	if ids[len(ids)-1] != "F13" {
		t.Fatalf("F13 streaming-export experiment missing or misordered: %v", ids)
	}
	res, err := RunExperiment("T1", ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "T1" || len(res.Rows) != 12 {
		t.Fatalf("T1 = %+v", res)
	}
	if _, err := RunExperiment("nope", ScaleSmall); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestComplianceHelpers(t *testing.T) {
	if FullCompliance().String() == "none" {
		t.Fatal("full compliance empty")
	}
	if NoCompliance().String() != "none" {
		t.Fatal("no compliance not none")
	}
}

// Quickstart: open a fully GDPR-compliant store, insert personal-data
// records as the controller, and exercise each role's view of the data.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	gdprbench "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "gdpr-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A compliant datastore: encrypted at rest and in transit, audited,
	// access-controlled, with strict TTL handling (§5's Redis retrofit).
	db, err := gdprbench.OpenRedis(gdprbench.RedisConfig{
		Dir:        dir,
		Compliance: gdprbench.FullCompliance(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	controller := gdprbench.ControllerActor()

	// The controller collects personal data. Every record must carry the
	// seven GDPR metadata attributes (§3.1's "metadata explosion"):
	// purpose, TTL, owner, objections, decisions, sharing, and source.
	records := []gdprbench.Record{
		{
			Key:  "ph-1x4b",
			Data: "123-456-7890",
			Meta: gdprbench.Metadata{
				Purposes: []string{"ads", "2fa"},
				Expiry:   time.Now().Add(365 * 24 * time.Hour),
				User:     "neo",
				Source:   "first-party",
			},
		},
		{
			Key:  "email-77ab",
			Data: "neo@matrix.example",
			Meta: gdprbench.Metadata{
				Purposes:   []string{"newsletter"},
				Expiry:     time.Now().Add(30 * 24 * time.Hour),
				User:       "neo",
				Objections: []string{"ads"},
				Source:     "signup-form",
			},
		},
		{
			Key:  "addr-9c01",
			Data: "1 Main St Zion",
			Meta: gdprbench.Metadata{
				Purposes:   []string{"shipping"},
				Expiry:     time.Now().Add(90 * 24 * time.Hour),
				User:       "trinity",
				SharedWith: []string{"courier-co"},
				Source:     "checkout",
			},
		},
	}
	for _, rec := range records {
		if err := db.CreateRecord(controller, rec); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("controller stored %d personal-data records\n\n", len(records))

	// The customer reads everything that concerns them (G 15).
	neo := gdprbench.CustomerActor("neo")
	mine, err := db.ReadData(neo, gdprbench.ByUser("neo"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("neo's records (right of access, G 15):\n")
	for _, r := range mine {
		fmt.Printf("  %s\n", r)
	}

	// A processor may only read data whose purposes cover its own, and
	// whose owner has not objected (G 28(3c), G 21).
	adsBot := gdprbench.ProcessorActor("ads-bot", "ads")
	visible, err := db.ReadData(adsBot, gdprbench.ByPurpose("ads"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nads processor sees %d record(s) (neo objected to ads on email-77ab):\n", len(visible))
	for _, r := range visible {
		fmt.Printf("  %s = %s\n", r.Key, r.Data)
	}

	// The regulator inspects metadata — never personal data (G 31).
	regulator := gdprbench.RegulatorActor()
	meta, err := db.ReadMetadata(regulator, gdprbench.ByShare("courier-co"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nregulator: %d record(s) shared with courier-co; personal data redacted: %q\n",
		len(meta), meta[0].Data)

	// The compliance capabilities are discoverable (G 24, 25).
	features, err := db.GetSystemFeatures(regulator)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsystem features: compliance=%s aof=%s expiry=%s\n",
		features["compliance"], features["aof"], features["expiry_mode"])
}

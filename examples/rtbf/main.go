// Right to be forgotten (G 17) end to end: a customer requests erasure,
// the TTL machinery purges expired records, and the regulator verifies
// the deletions — the paper's timely-deletion story on the PostgreSQL-
// model engine with its 1-second TTL daemon semantics.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	gdprbench "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "gdpr-rtbf-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := gdprbench.OpenPostgres(gdprbench.PostgresConfig{
		Dir:        dir,
		Compliance: gdprbench.FullCompliance(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	controller := gdprbench.ControllerActor()
	now := time.Now()

	// Morpheus has three records: two long-lived, one about to expire.
	recs := []gdprbench.Record{
		{Key: "profile-m1", Data: "morpheus-profile", Meta: gdprbench.Metadata{
			Purposes: []string{"account"}, Expiry: now.Add(365 * 24 * time.Hour),
			User: "morpheus", Source: "signup"}},
		{Key: "search-m2", Data: "red pill suppliers", Meta: gdprbench.Metadata{
			Purposes: []string{"search-history"}, Expiry: now.Add(365 * 24 * time.Hour),
			User: "morpheus", Source: "search-box"}},
		{Key: "session-m3", Data: "session-token-xyz", Meta: gdprbench.Metadata{
			Purposes: []string{"session"}, Expiry: now.Add(300 * time.Millisecond),
			User: "morpheus", Source: "login"}},
	}
	for _, r := range recs {
		if err := db.CreateRecord(controller, r); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("controller stored 3 records for morpheus")

	// 1. The customer exercises the right to be forgotten on the search
	// history (G 17): strict interpretation = synchronous erasure.
	morpheus := gdprbench.CustomerActor("morpheus")
	n, err := db.DeleteRecord(morpheus, gdprbench.ByKey("search-m2"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("right to be forgotten: erased %d record(s) synchronously\n", n)

	// 2. The session record expires on its own; the TTL daemon (1-second
	// period, §5.2) purges it.
	time.Sleep(1500 * time.Millisecond)
	fmt.Println("waited for the TTL daemon cycle...")

	// 3. The regulator verifies both deletions (and that the long-lived
	// record is still there).
	regulator := gdprbench.RegulatorActor()
	present, err := db.VerifyDeletion(regulator, []string{"search-m2", "session-m3"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("regulator verify-deletion: %d of 2 erased records still present\n", present)
	if present != 0 {
		log.Fatal("deletion verification FAILED")
	}

	remaining, err := db.ReadData(morpheus, gdprbench.ByUser("morpheus"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("morpheus still has %d live record(s): %s\n", len(remaining), remaining[0].Key)

	// 4. Every step above is in the audit trail (G 30).
	logs, err := db.GetSystemLogs(regulator, now.Add(-time.Minute), time.Now())
	if err != nil {
		log.Fatal(err)
	}
	deletes := 0
	for _, e := range logs {
		if e.Op == "DELETE-RECORD" || e.Op == "DELETE" {
			deletes++
		}
	}
	fmt.Printf("audit trail: %d entries, %d deletion events recorded\n", len(logs), deletes)
}

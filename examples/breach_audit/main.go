// Breach investigation (G 33, 34): after a suspected breach window, the
// regulator pulls time-ranged system logs to determine which operations
// touched personal data, then inspects the metadata of affected users —
// the paper's regulator workload as a concrete scenario.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	gdprbench "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "gdpr-breach-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := gdprbench.OpenRedis(gdprbench.RedisConfig{
		Dir:        dir,
		Compliance: gdprbench.FullCompliance(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	controller := gdprbench.ControllerActor()
	now := time.Now()

	// Seed a handful of users' records.
	users := []string{"alice", "bob", "carol"}
	for i, u := range users {
		rec := gdprbench.Record{
			Key:  fmt.Sprintf("cc-%d", i),
			Data: fmt.Sprintf("4111-0000-0000-000%d", i),
			Meta: gdprbench.Metadata{
				Purposes: []string{"billing"},
				Expiry:   now.Add(365 * 24 * time.Hour),
				User:     u,
				Source:   "checkout",
			},
		}
		if err := db.CreateRecord(controller, rec); err != nil {
			log.Fatal(err)
		}
	}

	// --- the suspected breach window begins ---
	breachStart := time.Now()
	rogue := gdprbench.ProcessorActor("rogue-job", "billing")
	for i := range users {
		if _, err := db.ReadData(rogue, gdprbench.ByKey(fmt.Sprintf("cc-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	breachEnd := time.Now()
	// --- the suspected breach window ends ---

	regulator := gdprbench.RegulatorActor()

	// 1. Pull the system logs for exactly the breach window (G 33(3a)
	// requires reporting the approximate number of affected customers).
	entries, err := db.GetSystemLogs(regulator, breachStart, breachEnd)
	if err != nil {
		log.Fatal(err)
	}
	touched := map[string]bool{}
	for _, e := range entries {
		if e.Op == "READ-DATA" && e.Actor == "processor:rogue-job" {
			touched[e.Target] = true
		}
	}
	fmt.Printf("breach window logs: %d entries; rogue processor read %d distinct targets\n",
		len(entries), len(touched))

	// 2. For each affected record, inspect the metadata to identify the
	// data subjects who must be notified.
	affected := map[string]bool{}
	for i := range users {
		meta, err := db.ReadMetadata(regulator, gdprbench.ByKey(fmt.Sprintf("cc-%d", i)))
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range meta {
			affected[m.Meta.User] = true
		}
	}
	fmt.Printf("affected data subjects to notify within 72 hours: %d (%v)\n",
		len(affected), keys(affected))

	// 3. The regulator never sees the personal data itself.
	if got, _ := db.ReadData(regulator, gdprbench.ByUser("alice")); len(got) != 0 {
		log.Fatal("regulator should not read personal data")
	}
	fmt.Println("regulator access to raw personal data: denied (G 31: metadata only)")
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

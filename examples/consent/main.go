// Consent and objections (G 7.3, G 18.1, G 21): a customer withdraws
// consent for a processing purpose; the processor's reads immediately
// stop seeing the record; the customer later re-consents.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	gdprbench "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "gdpr-consent-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := gdprbench.OpenPostgres(gdprbench.PostgresConfig{
		Dir:        dir,
		Compliance: gdprbench.FullCompliance(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	controller := gdprbench.ControllerActor()
	rec := gdprbench.Record{
		Key:  "loc-trace-1",
		Data: "lat=48.85 lon=2.35",
		Meta: gdprbench.Metadata{
			Purposes: []string{"navigation", "ads"},
			Expiry:   time.Now().Add(180 * 24 * time.Hour),
			User:     "niobe",
			Source:   "mobile-app",
		},
	}
	if err := db.CreateRecord(controller, rec); err != nil {
		log.Fatal(err)
	}

	adsEngine := gdprbench.ProcessorActor("ads-engine", "ads")
	see := func(label string) int {
		got, err := db.ReadData(adsEngine, gdprbench.ByPurpose("ads"))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-35s ads processor sees %d record(s)\n", label, len(got))
		return len(got)
	}

	if see("initial consent:") != 1 {
		log.Fatal("expected the record to be visible")
	}

	// Niobe objects to ads processing (G 21): an objection is a per-item
	// blacklist entry the store must honor on every subsequent access.
	niobe := gdprbench.CustomerActor("niobe")
	n, err := db.UpdateMetadata(niobe, gdprbench.ByKey("loc-trace-1"), gdprbench.Delta{
		Attr:   gdprbench.AttrObjection,
		Op:     gdprbench.DeltaAdd,
		Values: []string{"ads"},
	})
	if err != nil || n != 1 {
		log.Fatalf("objection update failed: n=%d err=%v", n, err)
	}
	if see("after objection (G 21):") != 0 {
		log.Fatal("objection was not honored")
	}

	// Navigation processing is unaffected — objections are per-use.
	nav := gdprbench.ProcessorActor("router", "navigation")
	got, err := db.ReadData(nav, gdprbench.ByKey("loc-trace-1"))
	if err != nil || len(got) != 1 {
		log.Fatalf("navigation read broken: %d err=%v", len(got), err)
	}
	fmt.Printf("%-35s navigation processor sees %d record(s)\n", "objection is per-purpose:", len(got))

	// Niobe changes her mind (G 7.3 — consent is revocable and grantable).
	if _, err := db.UpdateMetadata(niobe, gdprbench.ByKey("loc-trace-1"), gdprbench.Delta{
		Attr:   gdprbench.AttrObjection,
		Op:     gdprbench.DeltaRemove,
		Values: []string{"ads"},
	}); err != nil {
		log.Fatal(err)
	}
	if see("after consent restored (G 7.3):") != 1 {
		log.Fatal("consent restoration not honored")
	}

	// The whole consent history is auditable (G 30).
	logs, err := db.GetSystemLogs(gdprbench.RegulatorActor(), time.Now().Add(-time.Minute), time.Now())
	if err != nil {
		log.Fatal(err)
	}
	updates := 0
	for _, e := range logs {
		if e.Op == "UPDATE-METADATA" {
			updates++
		}
	}
	fmt.Printf("audit trail records %d consent change(s)\n", updates)
}

// Data portability (G 20): a customer downloads every record that
// concerns them, with full metadata, in the benchmark's wire format —
// the "download all the personal data companies have amassed" flow the
// paper's §2.3 describes.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	gdprbench "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "gdpr-port-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := gdprbench.OpenRedis(gdprbench.RedisConfig{
		Dir:        dir,
		Compliance: gdprbench.FullCompliance(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// The controller has accumulated records for many users over time.
	controller := gdprbench.ControllerActor()
	now := time.Now()
	sources := []string{"web", "mobile", "partner-import"}
	for i := 0; i < 30; i++ {
		user := fmt.Sprintf("user-%d", i%5)
		rec := gdprbench.Record{
			Key:  fmt.Sprintf("item-%04d", i),
			Data: fmt.Sprintf("payload-%04d", i),
			Meta: gdprbench.Metadata{
				Purposes: []string{"service", "analytics"},
				Expiry:   now.Add(365 * 24 * time.Hour),
				User:     user,
				Source:   sources[i%len(sources)],
			},
		}
		if i%4 == 0 {
			rec.Meta.SharedWith = []string{"analytics-co"}
		}
		if err := db.CreateRecord(controller, rec); err != nil {
			log.Fatal(err)
		}
	}

	// user-2 requests a portable export of everything about them (G 20).
	subject := gdprbench.CustomerActor("user-2")
	mine, err := db.ReadData(subject, gdprbench.ByUser("user-2"))
	if err != nil {
		log.Fatal(err)
	}

	export, err := os.Create(dir + "/user-2-export.gdpr")
	if err != nil {
		log.Fatal(err)
	}
	for _, rec := range mine {
		// The wire format (§4.2.1) is the portable representation:
		// key;data;PUR=..;TTL=..;USR=..;OBJ=..;DEC=..;SHR=..;SRC=..;
		fmt.Fprintln(export, rec.String())
	}
	if err := export.Close(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("exported %d records for user-2:\n", len(mine))
	for _, rec := range mine {
		fmt.Printf("  %s\n", rec)
	}

	// The export must be complete: cross-check against the controller's
	// own view.
	all, err := db.ReadData(controller, gdprbench.ByUser("user-2"))
	if err != nil {
		log.Fatal(err)
	}
	if len(all) != len(mine) {
		log.Fatalf("export incomplete: %d of %d records", len(mine), len(all))
	}
	fmt.Printf("\nexport verified complete (%d/%d records), written to %s\n",
		len(mine), len(all), export.Name())

	// And it must contain records from every source, including
	// third-party imports the user may not know about (§3.1, origin).
	bySource := map[string]int{}
	for _, rec := range mine {
		bySource[rec.Meta.Source]++
	}
	fmt.Printf("records by origin: %v\n", bySource)
}
